// Ablations of ZeRO-Infinity's design choices, measured on the REAL engine
// (wall-clock on this machine, tiny model, NVMe-backed swap files):
//
//   1. prefetch depth (Sec. 6.2's dynamic prefetcher),
//   2. optimizer chunk size for the NVMe pipeline (Sec. 5.2.2),
//   3. bandwidth-centric allgather vs broadcast retrieval (Sec. 6.1),
//   4. small-parameter persistence threshold.
//
// Loss columns double as correctness witnesses: every ablation is a pure
// performance knob, so losses must be identical down the column.
#include <chrono>
#include <filesystem>
#include <iostream>

#include "core/engine.hpp"
#include "model/gpt.hpp"
#include "sim/report.hpp"

using namespace zi;
using zi::sim::Table;
using zi::sim::print_banner;

namespace {

namespace fs = std::filesystem;

struct Outcome {
  double ms_per_step = 0;
  float last_loss = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t fetches = 0;
};

Outcome run(EngineConfig cfg, const fs::path& dir, int steps = 6) {
  GptConfig mc;
  mc.vocab = 64;
  mc.seq = 16;
  mc.hidden = 64;
  mc.layers = 3;
  mc.heads = 4;
  cfg.nvme_dir = dir.string();
  cfg.loss_scale.init_scale = 1024.0f;

  Outcome out;
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(2 * mc.seq), targets(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = static_cast<std::int32_t>((comm.rank() * 7 + i * 3) % 63);
      targets[i] = static_cast<std::int32_t>((tokens[i] * 5 + 1) % 63);
    }
    // Warm-up step records the prefetch trace.
    engine.train_step(tokens, targets);
    const auto t0 = std::chrono::steady_clock::now();
    float loss = 0;
    for (int s = 0; s < steps; ++s) {
      loss = engine.train_step(tokens, targets).global_loss;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (comm.rank() == 0) {
      out.ms_per_step =
          std::chrono::duration<double, std::milli>(t1 - t0).count() / steps;
      out.last_loss = loss;
      out.prefetch_hits = engine.coordinator()->stats().prefetch_hits;
      out.fetches = engine.coordinator()->stats().fetches;
    }
  });
  return out;
}

}  // namespace

int main() {
  const fs::path dir =
      fs::temp_directory_path() / ("zi_ablate_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  {
    print_banner(std::cout, "Ablation 1 — prefetch depth (NVMe params)");
    Table t({"prefetch depth", "ms/step", "prefetch hits", "final loss"});
    for (const int depth : {0, 1, 2, 4, 8}) {
      EngineConfig cfg = preset_zero_infinity_nvme();
      cfg.prefetch_depth = depth;
      const Outcome o = run(cfg, dir / ("pf" + std::to_string(depth)));
      t.add_row({std::to_string(depth), Table::num(o.ms_per_step, 1),
                 std::to_string(o.prefetch_hits), Table::num(o.last_loss, 6)});
    }
    t.print(std::cout);
  }

  {
    print_banner(std::cout,
                 "Ablation 2 — NVMe optimizer chunk size (Sec. 5.2.2)");
    Table t({"chunk elems", "ms/step", "final loss"});
    for (const std::int64_t chunk : {256, 1024, 4096, 16384, 65536}) {
      EngineConfig cfg = preset_zero_infinity_nvme();
      cfg.optimizer_chunk_elems = chunk;
      const Outcome o = run(cfg, dir / ("ck" + std::to_string(chunk)));
      t.add_row({std::to_string(chunk), Table::num(o.ms_per_step, 1),
                 Table::num(o.last_loss, 6)});
    }
    t.print(std::cout);
  }

  {
    print_banner(std::cout,
                 "Ablation 3 — bandwidth-centric allgather vs broadcast "
                 "retrieval (Sec. 6.1, CPU-resident params)");
    Table t({"retrieval", "ms/step", "gathers", "final loss"});
    for (const bool bandwidth_centric : {true, false}) {
      EngineConfig cfg = preset_zero3();
      cfg.param_placement = Placement::kCpu;
      cfg.optimizer_placement = Placement::kCpu;
      cfg.grad_placement = Placement::kCpu;
      cfg.bandwidth_centric = bandwidth_centric;
      const Outcome o =
          run(cfg, dir / (bandwidth_centric ? "ag" : "bc"));
      t.add_row({bandwidth_centric ? "allgather (1/dp per link)"
                                   : "broadcast (owner link)",
                 Table::num(o.ms_per_step, 1), std::to_string(o.fetches),
                 Table::num(o.last_loss, 6)});
    }
    t.print(std::cout);
  }

  {
    print_banner(std::cout, "Ablation 4 — small-parameter persistence");
    Table t({"threshold (elems)", "ms/step", "gathers", "final loss"});
    for (const std::int64_t thr : {0, 64, 256}) {
      EngineConfig cfg = preset_zero_infinity_cpu();
      cfg.persistence_threshold_elems = thr;
      const Outcome o = run(cfg, dir / ("ps" + std::to_string(thr)));
      t.add_row({std::to_string(thr), Table::num(o.ms_per_step, 1),
                 std::to_string(o.fetches), Table::num(o.last_loss, 6)});
    }
    t.print(std::cout);
  }

  std::cout << "\nIdentical loss columns within each table: every knob is a "
               "pure performance transformation.\n";
  fs::remove_all(dir);
  return 0;
}
