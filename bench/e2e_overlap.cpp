// Overlap-centric design ablation on the REAL engine (Sec. 6.2): the same
// ZeRO-3 + NVMe training run with overlap_transfers on vs off, plus a
// third variant with overlap on but the transfer scheduler's coalescing
// disabled (ZI_MOVE_COALESCE=0), isolating what request merging buys on
// top of overlap.
//
// With overlap on, the DataMover pipelines are active end to end — the
// coordinator prefetches parameter shards ahead of the compute trace and
// the chunked optimizer double-buffers its NVMe state reads/write-backs.
// With overlap off the identical byte traffic runs sequentially
// (load → compute → store), so the wall-clock delta is purely the hidden
// I/O latency; loss trajectories must be bit-identical across all
// variants — scheduling and coalescing change how bytes travel, never
// which bytes.
//
// ZI_BENCH_JSON=<path> writes machine-readable results (BENCH_overlap.json
// in CI) including the per-route DataMover counters.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "model/gpt.hpp"
#include "sim/report.hpp"

using namespace zi;
using zi::sim::Table;
using zi::sim::print_banner;

namespace {

struct Outcome {
  float first_loss = 0, last_loss = 0;
  double ms_per_step = 0;
  double move_wait_seconds = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t move_transfers = 0;
  std::uint64_t route_bytes[kNumRoutes] = {};
  std::uint64_t staged_pinned = 0, staged_heap = 0;
  std::uint64_t sched_backend_ops = 0, coalesced_transfers = 0;
};

Outcome run(bool overlap, bool coalesce,
            const std::filesystem::path& dir) {
  // DataMover reads ZI_MOVE_* when each rank constructs its resources.
  ::setenv("ZI_MOVE_COALESCE", coalesce ? "1" : "0", 1);
  GptConfig mc;
  mc.vocab = 64;
  mc.seq = 16;
  mc.hidden = 32;
  mc.layers = 3;
  mc.heads = 4;

  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.overlap_transfers = overlap;
  cfg.nvme_dir = dir.string();
  cfg.loss_scale.init_scale = 1024.0f;
  cfg.adam.lr = 5e-3f;

  constexpr int kWorld = 4;
  constexpr int kSteps = 12;
  constexpr int kBatch = 2;
  Outcome out;
  AioEngine aio;
  run_ranks(kWorld, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(kBatch * mc.seq), targets(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = static_cast<std::int32_t>((comm.rank() * 7 + i * 3) % 63);
      targets[i] = static_cast<std::int32_t>((tokens[i] * 5 + 1) % 63);
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < kSteps; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) {
        if (s == 0) out.first_loss = st.global_loss;
        if (s == kSteps - 1) out.last_loss = st.global_loss;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (comm.rank() == 0) {
      out.ms_per_step =
          std::chrono::duration<double, std::milli>(t1 - t0).count() / kSteps;
      const DataMover::Stats mv = engine.resources().mover().stats();
      for (int r = 0; r < kNumRoutes; ++r) {
        out.route_bytes[r] = mv.routes[static_cast<std::size_t>(r)].bytes;
      }
      out.move_transfers = mv.total_transfers();
      out.move_wait_seconds = mv.total_seconds();
      out.staged_pinned = mv.staged_pinned;
      out.staged_heap = mv.staged_heap;
      out.sched_backend_ops = mv.sched.backend_ops;
      out.coalesced_transfers = mv.sched.coalesced_transfers;
      if (engine.coordinator() != nullptr) {
        out.prefetch_hits = engine.coordinator()->stats().prefetch_hits;
      }
    }
  });
  return out;
}

void write_bench_json(const char* path, const Outcome& on,
                      const Outcome& off, const Outcome& nc) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "[zi] ZI_BENCH_JSON: cannot open " << path << "\n";
    return;
  }
  auto emit = [&](const char* name, const Outcome& o, bool overlap,
                  bool coalesce) {
    out << "{\"name\":\"" << name << "\""
        << ",\"overlap_transfers\":" << (overlap ? "true" : "false")
        << ",\"coalesce\":" << (coalesce ? "true" : "false")
        << ",\"ms_per_step\":" << o.ms_per_step
        << ",\"first_loss\":" << o.first_loss
        << ",\"last_loss\":" << o.last_loss
        << ",\"prefetch_hits\":" << o.prefetch_hits
        << ",\"move_transfers\":" << o.move_transfers
        << ",\"move_wait_seconds\":" << o.move_wait_seconds
        << ",\"staged_pinned\":" << o.staged_pinned
        << ",\"staged_heap\":" << o.staged_heap
        << ",\"sched_backend_ops\":" << o.sched_backend_ops
        << ",\"coalesced_transfers\":" << o.coalesced_transfers;
    for (int r = 0; r < kNumRoutes; ++r) {
      out << ",\"bytes_" << route_name(static_cast<Route>(r)) << "\":"
          << o.route_bytes[r];
    }
    out << "}";
  };
  out << "{\"bench\":\"e2e_overlap\",\"runs\":[";
  emit("overlap_on", on, true, true);
  out << ",";
  emit("overlap_on_no_coalesce", nc, true, false);
  out << ",";
  emit("overlap_off", off, false, true);
  out << "],\"speedup\":"
      << (on.ms_per_step > 0 ? off.ms_per_step / on.ms_per_step : 0.0)
      << ",\"coalesce_request_ratio\":"
      << (on.sched_backend_ops > 0
              ? static_cast<double>(nc.sched_backend_ops) /
                    static_cast<double>(on.sched_backend_ops)
              : 0.0)
      << ",\"bit_identical\":"
      << (on.first_loss == off.first_loss && on.last_loss == off.last_loss &&
                  on.first_loss == nc.first_loss &&
                  on.last_loss == nc.last_loss
              ? "true"
              : "false")
      << "}\n";
}

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("zi_overlap_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  print_banner(std::cout,
               "ZeRO-3 + NVMe: overlap on vs off, coalescing on vs off "
               "(tiny GPT, 4 ranks, 12 steps)");

  const Outcome off = run(false, true, dir / "off");
  const Outcome nc = run(true, false, dir / "nc");
  const Outcome on = run(true, true, dir / "on");
  ::unsetenv("ZI_MOVE_COALESCE");

  Table t({"mode", "loss step1", "loss step12", "ms/step", "prefetch hits",
           "nvme>host", "host>nvme", "aio reqs", "move wait s"});
  auto row = [&](const char* name, const Outcome& o) {
    t.add_row({name, Table::num(o.first_loss, 6), Table::num(o.last_loss, 6),
               Table::num(o.ms_per_step, 1), std::to_string(o.prefetch_hits),
               format_bytes(
                   o.route_bytes[static_cast<int>(Route::kNvmeFetch)]),
               format_bytes(
                   o.route_bytes[static_cast<int>(Route::kNvmeSpill)]),
               std::to_string(o.sched_backend_ops),
               Table::num(o.move_wait_seconds, 3)});
  };
  row("overlap on", on);
  row("overlap on, no coalesce", nc);
  row("overlap off", off);
  t.print(std::cout);

  if (const char* json_path = std::getenv("ZI_BENCH_JSON")) {
    if (json_path[0] != '\0') write_bench_json(json_path, on, off, nc);
  }

  const bool bit_identical =
      on.first_loss == off.first_loss && on.last_loss == off.last_loss &&
      on.first_loss == nc.first_loss && on.last_loss == nc.last_loss;
  std::cout << "\nLoss trajectories " << (bit_identical ? "ARE" : "ARE NOT")
            << " bit-identical; overlap hides "
            << (off.ms_per_step - on.ms_per_step)
            << " ms/step of I/O latency.\n";
  std::filesystem::remove_all(dir);
  // The overlap ablation is only meaningful if it did not change values.
  return bit_identical ? 0 : 1;
}
