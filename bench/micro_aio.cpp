// Microbenchmarks for the DeepNVMe-analog async I/O engine (Sec. 6.3):
// throughput vs block size, worker count, and queue depth; pinned-pool
// acquire/release; NVMe-store extent roundtrips.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "aio/aio_engine.hpp"
#include "aio/nvme_store.hpp"
#include "mem/pinned_pool.hpp"

namespace {

namespace fs = std::filesystem;
using namespace zi;

fs::path bench_dir() {
  static const fs::path dir = [] {
    const fs::path d =
        fs::temp_directory_path() / ("zi_bench_aio_" + std::to_string(::getpid()));
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

void BM_AioWrite(benchmark::State& state) {
  AioConfig cfg;
  cfg.num_workers = static_cast<std::size_t>(state.range(0));
  cfg.block_bytes = static_cast<std::size_t>(state.range(1));
  AioEngine engine(cfg);
  AioFile* f = engine.open(bench_dir() / "w.bin");
  std::vector<std::byte> buf(4 << 20, std::byte{0x5A});  // 4 MiB per request
  for (auto _ : state) {
    engine.write(f, 0, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
  state.counters["workers"] = static_cast<double>(cfg.num_workers);
}
BENCHMARK(BM_AioWrite)
    ->Args({1, 1 << 20})
    ->Args({4, 1 << 20})
    ->Args({4, 1 << 18})
    ->Args({8, 1 << 20})
    ->MinTime(0.1);

void BM_AioRead(benchmark::State& state) {
  AioConfig cfg;
  cfg.num_workers = static_cast<std::size_t>(state.range(0));
  AioEngine engine(cfg);
  AioFile* f = engine.open(bench_dir() / "r.bin");
  std::vector<std::byte> buf(4 << 20, std::byte{0x5A});
  engine.write(f, 0, buf);
  for (auto _ : state) {
    engine.read(f, 0, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_AioRead)->Arg(1)->Arg(4)->Arg(8)->MinTime(0.1);

// Queue depth: many outstanding async requests vs one-at-a-time. This is
// the "bulk read/write requests for asynchronous completion" claim.
void BM_AioQueueDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  AioConfig cfg;
  cfg.num_workers = 8;
  AioEngine engine(cfg);
  AioFile* f = engine.open(bench_dir() / "qd.bin");
  constexpr std::size_t kChunk = 512 << 10;
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(depth),
      std::vector<std::byte>(kChunk, std::byte{1}));
  for (auto _ : state) {
    std::vector<AioStatus> statuses;
    statuses.reserve(static_cast<std::size_t>(depth));
    for (int i = 0; i < depth; ++i) {
      statuses.push_back(engine.submit_write(
          f, static_cast<std::uint64_t>(i) * kChunk, bufs[static_cast<std::size_t>(i)]));
    }
    for (auto& s : statuses) s.wait();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          depth * static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_AioQueueDepth)->Arg(1)->Arg(4)->Arg(16)->MinTime(0.1);

void BM_PinnedPoolAcquireRelease(benchmark::State& state) {
  PinnedBufferPool pool(1 << 20, 8);
  for (auto _ : state) {
    PinnedLease lease = pool.acquire();
    benchmark::DoNotOptimize(lease.data());
  }
}
BENCHMARK(BM_PinnedPoolAcquireRelease)->MinTime(0.1);

void BM_NvmeStoreRoundtrip(benchmark::State& state) {
  AioEngine engine;
  NvmeStore store(engine, bench_dir() / "store.bin", 64 << 20);
  Extent e = store.allocate(1 << 20);
  std::vector<std::byte> buf(1 << 20, std::byte{7});
  for (auto _ : state) {
    store.write(e, buf);
    store.read(e, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_NvmeStoreRoundtrip)->MinTime(0.1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::filesystem::remove_all(bench_dir());
  return 0;
}
