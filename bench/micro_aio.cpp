// Microbenchmarks for the DeepNVMe-analog async I/O engine (Sec. 6.3):
// throughput vs block size, worker count, and queue depth; pinned-pool
// acquire/release; NVMe-store extent roundtrips.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <span>

#include "aio/aio_engine.hpp"
#include "aio/nvme_store.hpp"
#include "mem/pinned_pool.hpp"
#include "move/data_mover.hpp"

namespace {

namespace fs = std::filesystem;
using namespace zi;

fs::path bench_dir() {
  static const fs::path dir = [] {
    const fs::path d =
        fs::temp_directory_path() / ("zi_bench_aio_" + std::to_string(::getpid()));
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

void BM_AioWrite(benchmark::State& state) {
  AioConfig cfg;
  cfg.num_workers = static_cast<std::size_t>(state.range(0));
  cfg.block_bytes = static_cast<std::size_t>(state.range(1));
  AioEngine engine(cfg);
  AioFile* f = engine.open(bench_dir() / "w.bin");
  std::vector<std::byte> buf(4 << 20, std::byte{0x5A});  // 4 MiB per request
  for (auto _ : state) {
    engine.write(f, 0, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
  state.counters["workers"] = static_cast<double>(cfg.num_workers);
}
BENCHMARK(BM_AioWrite)
    ->Args({1, 1 << 20})
    ->Args({4, 1 << 20})
    ->Args({4, 1 << 18})
    ->Args({8, 1 << 20})
    ->MinTime(0.1);

void BM_AioRead(benchmark::State& state) {
  AioConfig cfg;
  cfg.num_workers = static_cast<std::size_t>(state.range(0));
  AioEngine engine(cfg);
  AioFile* f = engine.open(bench_dir() / "r.bin");
  std::vector<std::byte> buf(4 << 20, std::byte{0x5A});
  engine.write(f, 0, buf);
  for (auto _ : state) {
    engine.read(f, 0, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_AioRead)->Arg(1)->Arg(4)->Arg(8)->MinTime(0.1);

// Queue depth: many outstanding async requests vs one-at-a-time. This is
// the "bulk read/write requests for asynchronous completion" claim.
void BM_AioQueueDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  AioConfig cfg;
  cfg.num_workers = 8;
  AioEngine engine(cfg);
  AioFile* f = engine.open(bench_dir() / "qd.bin");
  constexpr std::size_t kChunk = 512 << 10;
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(depth),
      std::vector<std::byte>(kChunk, std::byte{1}));
  for (auto _ : state) {
    std::vector<AioStatus> statuses;
    statuses.reserve(static_cast<std::size_t>(depth));
    for (int i = 0; i < depth; ++i) {
      statuses.push_back(engine.submit_write(
          f, static_cast<std::uint64_t>(i) * kChunk, bufs[static_cast<std::size_t>(i)]));
    }
    for (auto& s : statuses) s.wait();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          depth * static_cast<std::int64_t>(kChunk));
}
BENCHMARK(BM_AioQueueDepth)->Arg(1)->Arg(4)->Arg(16)->MinTime(0.1);

void BM_PinnedPoolAcquireRelease(benchmark::State& state) {
  PinnedBufferPool pool(1 << 20, 8);
  for (auto _ : state) {
    PinnedLease lease = pool.acquire();
    benchmark::DoNotOptimize(lease.data());
  }
}
BENCHMARK(BM_PinnedPoolAcquireRelease)->MinTime(0.1);

// The transfer scheduler's coalescer on the workload it exists for: many
// small exactly-adjacent spills (the chunked optimizer's state streams).
// Arg(0) = coalescing off, Arg(1) = on; `aio_requests_per_iter` is the
// number of engine-level requests each variant needed for the same 64
// transfers — the coalesced run should need far fewer (≥30% reduction).
void BM_SchedSmallSpills(benchmark::State& state) {
  const bool coalesce = state.range(0) != 0;
  AioEngine engine;
  NvmeStore store(engine,
                  bench_dir() / (coalesce ? "sched_on.bin" : "sched_off.bin"),
                  64 << 20);
  PinnedBufferPool pool(1 << 20, 4);
  TransferScheduler::Config cfg;
  cfg.coalesce = coalesce;
  DataMover mover(store, pool, cfg);

  constexpr std::size_t kSeg = 16 << 10;  // 16 KiB per transfer
  constexpr int kN = 64;
  Extent e = store.allocate(kN * kSeg);
  std::vector<std::byte> buf(kN * kSeg, std::byte{0x3C});
  for (auto _ : state) {
    std::vector<TransferHandle> hs;
    hs.reserve(kN);
    for (int i = 0; i < kN; ++i) {
      hs.push_back(mover.spill_nvme(
          e,
          std::span<const std::byte>(buf.data() + i * kSeg, kSeg),
          static_cast<std::uint64_t>(i) * kSeg));
    }
    for (auto& h : hs) h.wait();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kN *
                          static_cast<std::int64_t>(kSeg));
  state.counters["aio_requests_per_iter"] =
      static_cast<double>(engine.stats().requests) /
      static_cast<double>(state.iterations());
  state.counters["coalesced_transfers"] =
      static_cast<double>(mover.stats().sched.coalesced_transfers);
}
BENCHMARK(BM_SchedSmallSpills)->Arg(0)->Arg(1)->MinTime(0.1);

void BM_NvmeStoreRoundtrip(benchmark::State& state) {
  AioEngine engine;
  NvmeStore store(engine, bench_dir() / "store.bin", 64 << 20);
  Extent e = store.allocate(1 << 20);
  std::vector<std::byte> buf(1 << 20, std::byte{7});
  for (auto _ : state) {
    store.write(e, buf);
    store.read(e, buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_NvmeStoreRoundtrip)->MinTime(0.1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::filesystem::remove_all(bench_dir());
  return 0;
}
