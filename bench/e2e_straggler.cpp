// Straggler rebalance A/B on the REAL engine: the same ZeRO-3 + NVMe
// training run on a 4-rank world where rank 3's compute is artificially
// slowed in proportion to the tokens it processes (an oversubscribed or
// thermally-throttled worker), once with uniform partitioning and once
// with RankWeights derived from the world's own busy-time EWMAs — the
// exact measurement the elastic supervisor rebalances from.
//
// In lockstep SPMD the world runs at the slowest rank's pace, so shifting
// sequences (and shard state) off the slow rank lowers the steady-state
// step time for everyone; the win is bounded by how much of the slow
// rank's step was its own compute. The uniform run doubles as the
// measurement pass: the trainer's straggler detector is armed with an
// unreachable conviction factor, so it times every step (busy = wall −
// sync-wait delta) without ever winding the run down.
//
// ZI_BENCH_JSON=<path> writes machine-readable results
// (BENCH_straggler.json in CI).
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.hpp"
#include "core/engine.hpp"
#include "core/partition.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/tokenizer.hpp"
#include "model/gpt.hpp"
#include "sim/report.hpp"

using namespace zi;
using zi::sim::Table;
using zi::sim::print_banner;

namespace {

constexpr int kWorld = 4;
constexpr int kSlowRank = 3;
constexpr int kSteps = 12;
constexpr std::int64_t kBatchPerRank = 2;
constexpr std::int64_t kPerTokenUs = 750;  // injected slowdown per token

/// Decorator adding a per-token compute penalty on one rank. The sleep
/// scales with the micro-batch it is handed, so weighted batch sizing
/// genuinely shrinks the slow rank's step — unlike a fixed per-collective
/// stall, which no repartitioning could hide.
class SlowModel : public TrainableModel {
 public:
  SlowModel(GptConfig mc, bool slow) : inner_(mc), slow_(slow) {}

  Module& module() override { return inner_.module(); }

  float forward_loss(std::span<const std::int32_t> inputs,
                     std::span<const std::int32_t> targets) override {
    if (slow_) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          kPerTokenUs * static_cast<std::int64_t>(inputs.size())));
    }
    return inner_.forward_loss(inputs, targets);
  }

  void backward_loss(float loss_scale) override {
    inner_.backward_loss(loss_scale);
  }

  void set_activation_offloader(ActivationOffloader* offloader) override {
    inner_.set_activation_offloader(offloader);
  }

 private:
  Gpt inner_;
  bool slow_;
};

struct Outcome {
  double ms_per_step = 0;
  float first_loss = 0, last_loss = 0;
  std::vector<double> step_ewma;          // per-rank busy-time EWMA (s)
  std::vector<std::int64_t> rank_batches; // sequences per rank per micro-batch
};

Outcome run(const RankWeights& weights, const std::filesystem::path& dir,
            const TokenDataset& data, const GptConfig& mc) {
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = dir.string();
  cfg.loss_scale.init_scale = 1024.0f;
  if (cfg.params_partitioned() && cfg.bandwidth_centric) {
    cfg.rank_weights = weights;
  }

  TrainerConfig tc;
  tc.total_steps = kSteps;
  tc.batch_per_rank = kBatchPerRank;
  tc.micro_batches = 1;
  tc.schedule.base_lr = 5e-3f;
  tc.schedule.warmup_steps = 2;
  tc.schedule.total_steps = kSteps;
  tc.rank_weights = weights;

  // Armed-but-unconvictable detection: the trainer times every step into
  // per-rank busy EWMAs (the supervisor's rebalance input) and never winds
  // the run down.
  WorldOptions opts;
  opts.straggler_factor = 1e9;
  opts.straggler_steps = 3;

  Outcome out;
  out.rank_batches.assign(kWorld, 0);
  AioEngine aio;
  run_world(kWorld, opts, [&](Communicator& comm) {
    SlowModel model(mc, comm.rank() == kSlowRank);
    ZeroEngine engine(model, comm, aio, cfg);
    Trainer trainer(engine, comm, data, nullptr, tc);
    const auto t0 = std::chrono::steady_clock::now();
    const TrainerReport report = trainer.run();
    const auto t1 = std::chrono::steady_clock::now();
    if (comm.rank() == 0) {
      out.ms_per_step =
          std::chrono::duration<double, std::milli>(t1 - t0).count() /
          kSteps;
      out.first_loss = report.train_losses.front();
      out.last_loss = report.train_losses.back();
      out.step_ewma = trainer.step_ewma();
    }
    out.rank_batches[static_cast<std::size_t>(comm.rank())] =
        trainer.rank_batch();
  });
  return out;
}

/// The supervisor's rebalance rule (elastic.cpp): throughput ∝ 1/busy-time,
/// normalized to mean 1.
RankWeights weights_from_ewma(const std::vector<double>& ewma) {
  RankWeights w;
  double sum = 0.0;
  for (const double e : ewma) {
    if (e <= 0.0) return {};
    w.push_back(1.0 / e);
    sum += 1.0 / e;
  }
  for (double& x : w) x *= static_cast<double>(w.size()) / sum;
  return w;
}

void write_bench_json(const char* path, const Outcome& uniform,
                      const Outcome& weighted, const RankWeights& weights) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "[zi] ZI_BENCH_JSON: cannot open " << path << "\n";
    return;
  }
  auto emit = [&](const char* name, const Outcome& o) {
    out << "{\"name\":\"" << name << "\""
        << ",\"ms_per_step\":" << o.ms_per_step
        << ",\"first_loss\":" << o.first_loss
        << ",\"last_loss\":" << o.last_loss << ",\"rank_batches\":[";
    for (std::size_t r = 0; r < o.rank_batches.size(); ++r) {
      out << (r ? "," : "") << o.rank_batches[r];
    }
    out << "],\"step_ewma_s\":[";
    for (std::size_t r = 0; r < o.step_ewma.size(); ++r) {
      out << (r ? "," : "") << o.step_ewma[r];
    }
    out << "]}";
  };
  out << "{\"bench\":\"e2e_straggler\",\"slow_rank\":" << kSlowRank
      << ",\"per_token_us\":" << kPerTokenUs << ",\"runs\":[";
  emit("uniform", uniform);
  out << ",";
  emit("weighted", weighted);
  out << "],\"rank_weights\":[";
  for (std::size_t r = 0; r < weights.size(); ++r) {
    out << (r ? "," : "") << weights[r];
  }
  out << "],\"speedup\":"
      << (weighted.ms_per_step > 0
              ? uniform.ms_per_step / weighted.ms_per_step
              : 0.0)
      << "}\n";
}

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("zi_straggler_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  print_banner(std::cout,
               "ZeRO-3 + NVMe under a slow rank: uniform vs weighted "
               "partitioning (tiny GPT, 4 ranks, 12 steps, rank 3 slowed "
               "per token)");

  GptConfig mc;
  ByteTokenizer tok;
  std::string corpus;
  for (int i = 0; i < 40; ++i) corpus += "the quick brown fox jumps. ";
  mc.vocab = tok.vocab_size();
  mc.seq = 16;
  mc.hidden = 32;
  mc.layers = 2;
  mc.heads = 4;
  const TokenDataset data(tok.encode(corpus), mc.seq);

  // Pass 1: uniform partitioning — every rank draws kBatchPerRank
  // sequences, so the slow rank gates the whole world. Its step EWMAs are
  // the rebalance input.
  const Outcome uniform = run({}, dir / "uniform", data, mc);
  const RankWeights weights = weights_from_ewma(uniform.step_ewma);

  // Pass 2: the same run with weighted shards and batches.
  const Outcome weighted = run(weights, dir / "weighted", data, mc);

  Table t({"mode", "ms/step", "loss step1", "loss step12", "batches r0..r3",
           "slow-rank ewma ms"});
  auto batches_str = [](const Outcome& o) {
    std::string s;
    for (std::size_t r = 0; r < o.rank_batches.size(); ++r) {
      s += (r ? "/" : "") + std::to_string(o.rank_batches[r]);
    }
    return s;
  };
  auto slow_ewma_ms = [](const Outcome& o) {
    return o.step_ewma.size() > kSlowRank
               ? o.step_ewma[kSlowRank] * 1e3
               : 0.0;
  };
  t.add_row({"uniform", Table::num(uniform.ms_per_step, 1),
             Table::num(uniform.first_loss, 6),
             Table::num(uniform.last_loss, 6), batches_str(uniform),
             Table::num(slow_ewma_ms(uniform), 1)});
  t.add_row({"weighted", Table::num(weighted.ms_per_step, 1),
             Table::num(weighted.first_loss, 6),
             Table::num(weighted.last_loss, 6), batches_str(weighted),
             Table::num(slow_ewma_ms(weighted), 1)});
  t.print(std::cout);

  std::cout << "\nRank weights from uniform-run EWMAs:";
  for (const double w : weights) std::cout << " " << w;
  std::cout << "\nWeighted partitioning "
            << (weighted.ms_per_step < uniform.ms_per_step ? "LOWERS"
                                                           : "DOES NOT LOWER")
            << " steady-state step time under the injected straggler: "
            << uniform.ms_per_step << " -> " << weighted.ms_per_step
            << " ms/step (speedup "
            << (weighted.ms_per_step > 0
                    ? uniform.ms_per_step / weighted.ms_per_step
                    : 0.0)
            << "x).\n";

  if (const char* json_path = std::getenv("ZI_BENCH_JSON")) {
    if (json_path[0] != '\0') write_bench_json(json_path, uniform, weighted,
                                               weights);
  }
  std::filesystem::remove_all(dir);

  // Timing is machine-dependent; what must hold structurally is that the
  // rebalance moved work off the slow rank.
  const bool rebalanced =
      !weights.empty() &&
      weighted.rank_batches[kSlowRank] < uniform.rank_batches[kSlowRank];
  return rebalanced ? 0 : 1;
}
