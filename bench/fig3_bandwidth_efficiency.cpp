// Figure 3: impact of bandwidth on training efficiency (Eq. 6) for
// (a) parameters and gradients, (b) optimizer states, (c) activation
// checkpoints — at 70 TFlops/GPU achievable peak.
#include <iostream>
#include <vector>

#include "sim/efficiency.hpp"
#include "sim/report.hpp"

using namespace zi::sim;

namespace {
constexpr double kPeak = 70e12;

void series(const std::string& title, const std::vector<double>& aits,
            const std::vector<std::string>& labels,
            const std::vector<double>& bws_gbs) {
  print_banner(std::cout, title);
  std::vector<std::string> headers = {"bw (GB/s)"};
  headers.insert(headers.end(), labels.begin(), labels.end());
  Table t(headers);
  for (const double bw : bws_gbs) {
    std::vector<std::string> row = {Table::num(bw, 1)};
    for (const double ait : aits) {
      row.push_back(Table::pct(efficiency(ait, bw * 1e9, kPeak)));
    }
    t.add_row(row);
  }
  t.print(std::cout);
}
}  // namespace

int main() {
  const double seq = 1024;

  series("Figure 3a — parameter+gradient bandwidth vs efficiency",
         {ait_param_grad(1, seq), ait_param_grad(2, seq),
          ait_param_grad(4, seq), ait_param_grad(8, seq),
          ait_param_grad(16, seq)},
         {"bsz 1", "bsz 2", "bsz 4", "bsz 8", "bsz 16"},
         {1, 5, 10, 30, 70, 100, 200, 500});
  std::cout << "\npaper: >=70 GB/s gives >50% efficiency even at bsz 1\n";

  series("Figure 3b — optimizer-state bandwidth vs efficiency",
         {ait_optimizer(1, seq), ait_optimizer(2, seq), ait_optimizer(4, seq),
          ait_optimizer(8, seq), ait_optimizer(16, seq)},
         {"bsz 1", "bsz 2", "bsz 4", "bsz 8", "bsz 16"},
         {10, 50, 100, 300, 700, 1500, 3000});
  std::cout << "\npaper: 90% efficiency at bsz 2 needs ~1.5 TB/s ("
            << Table::num(
                   bandwidth_for_efficiency(ait_optimizer(2, seq), kPeak, 0.9) /
                       1e12,
                   2)
            << " TB/s here)\n";

  series("Figure 3c — activation-checkpoint bandwidth vs efficiency",
         {ait_activation(2048, 1), ait_activation(8192, 1),
          ait_activation(16384, 1), ait_activation(32768, 1),
          ait_activation(65536, 1)},
         {"hd 2K", "hd 8K", "hd 16K", "hd 32K", "hd 64K"},
         {0.5, 1, 2, 3, 5, 10});
  std::cout << "\npaper: 2 GB/s sustains >50% at hd 2K; <1 GB/s suffices "
               "beyond hd 8K\n";
  return 0;
}
