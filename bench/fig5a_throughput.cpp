// Figure 5a: ZeRO-Infinity vs 3D parallelism throughput on 512 GPUs for
// models from 0.5T to 20T parameters (Table 1 configurations).
//
// Paper: near-identical throughput at 0.5T; 3D parallelism OOMs beyond;
// ZeRO-Infinity sustains up to 49 TFlops/GPU and trains 20T (at 34
// TFlops/GPU, limited by the tiny 1.25 batch/GPU).
#include <iostream>

#include "sim/model_zoo.hpp"
#include "sim/report.hpp"

using namespace zi::sim;

int main() {
  const ClusterSpec cluster = dgx2_cluster();
  print_banner(std::cout,
               "Figure 5a — throughput on 512 GPUs, 0.5T-20T params");

  Table t({"model", "batch/GPU", "ZeRO-Infinity (TF/GPU)",
           "3D parallelism (TF/GPU)", "total (pflops)"});
  for (const NamedConfig& cfg : table1_configs()) {
    if (cfg.sim.nodes != 32) continue;
    const SimResult inf = simulate_iteration(cfg.sim, cluster);

    SimConfig threed = cfg.sim;
    threed.strategy = Strategy::kThreeD;
    threed.param_tier = SimConfig::TierOpt::kDefault;
    threed.opt_tier = SimConfig::TierOpt::kDefault;
    threed.act_tier = SimConfig::TierOpt::kDefault;
    const SimResult base = simulate_iteration(threed, cluster);

    t.add_row({cfg.label, Table::num(cfg.sim.model.batch(), 2),
               inf.feasible ? Table::num(inf.tflops_per_gpu, 1) : "OOM",
               base.feasible ? Table::num(base.tflops_per_gpu, 1)
                             : "OOM (" + base.limiter + ")",
               inf.feasible ? Table::num(inf.pflops_total, 1) : "-"});
  }
  t.print(std::cout);
  std::cout << "\npaper: parity at 0.5T; 3D OOM >=~0.65T; ZeRO-Infinity 49 "
               "TF/GPU at 0.5T-5T, 43 at 10T, 34 at 20T (>25 pflops total)\n";
  return 0;
}
