// Figure 1: maximum trainable model size, 3D parallelism vs ZeRO-Infinity,
// on 32 NVIDIA V100 DGX-2 nodes (512 GPUs).
//
// Paper: 3D parallelism tops out around 0.65T parameters (bounded by
// aggregate GPU memory); ZeRO-Infinity reaches 32T — a ~50x leap.
#include <iostream>

#include "common/units.hpp"
#include "sim/memory_model.hpp"
#include "sim/report.hpp"

using namespace zi;
using namespace zi::sim;

int main() {
  const ClusterSpec cluster = dgx2_cluster();
  print_banner(std::cout,
               "Figure 1 — max model size on 32 DGX-2 nodes (512 GPUs)");

  Table t({"system", "max params", "limiting tier", "vs 3D parallelism"});
  const double threed = max_model_params(Strategy::kThreeD, cluster, 32);
  const double inf = max_model_params(Strategy::kZeroInfNvme, cluster, 32);

  auto limiter_of = [&](Strategy s, double params) {
    const ModelShape shape = shape_for_params(params * 1.05);
    return strategy_footprint(shape, s, cluster, 32).limiter;
  };

  t.add_row({"3D parallelism", format_count(threed),
             limiter_of(Strategy::kThreeD, threed), "1.0x"});
  t.add_row({"ZeRO-Infinity", format_count(inf),
             limiter_of(Strategy::kZeroInfNvme, inf),
             Table::num(inf / threed, 1) + "x"});
  t.print(std::cout);

  std::cout << "\npaper: 3D parallelism ~0.65T, ZeRO-Infinity 32T (~50x)\n";
  return 0;
}
