// Table 3: bandwidth requirements for ZeRO-Infinity to remain efficient on
// clusters of 512 accelerators with 10x and 100x the achievable compute of
// a V100.
//
// The paper's anchors: at V100 compute (0.07 pflops/device) the slow-memory
// requirement is ~3 GB/s per device (1.5 TB/s aggregate) and GPU-GPU needs
// 70 GB/s; both scale linearly with device compute.
#include <iostream>

#include "sim/efficiency.hpp"
#include "sim/hw_model.hpp"
#include "sim/report.hpp"

using namespace zi::sim;

int main() {
  print_banner(std::cout,
               "Table 3 — bandwidth needed to stay efficient at 10x/100x "
               "device compute (512 devices)");

  Table t({"devices", "achievable peak (pflops/dev)",
           "slow-memory bw req (GB/s/dev)", "aggregate slow bw (TB/s)",
           "GPU-GPU bw req (GB/s)"});
  // Calibrate the per-device slow-memory requirement so the V100 row
  // reproduces the paper's 3 GB/s anchor, then let Eq. 6 scale it.
  const double v100_peak = 70e12;
  const double ait_slow = ait_activation(8192, 1);  // offload-traffic AIT
  const double eff_target =
      efficiency(ait_slow, 3e9, v100_peak);  // implied target at the anchor
  for (const double factor : {1.0, 10.0, 100.0}) {
    const ClusterSpec c = scaled_accelerator(factor);
    const double slow_bw =
        bandwidth_for_efficiency(ait_slow, c.peak_tp, eff_target);
    const double gg_bw =
        bandwidth_for_efficiency(ait_param_grad(1, 1024), c.peak_tp, 0.5);
    t.add_row({"512", Table::num(c.peak_tp / 1e15, 2),
               Table::num(slow_bw / 1e9, 1),
               Table::num(slow_bw * 512 / 1e12, 1),
               Table::num(gg_bw / 1e9, 1)});
  }
  t.print(std::cout);
  std::cout << "\npaper: 3.0/30/300 GB/s per device; 1.5/15/150 TB/s "
               "aggregate; 70/700/7000 GB/s GPU-GPU\n";
  return 0;
}
