// Figure 6e: throughput overhead of offloading activation checkpoints to
// CPU memory, as a function of hidden size (Table 8 configurations).
//
// Paper: up to ~1.2x slowdown at small hidden sizes; negligible at 32K/64K
// (the activation AIT of Eq. 11 grows with hd).
#include <iostream>

#include "sim/model_zoo.hpp"
#include "sim/report.hpp"

using namespace zi::sim;

int main() {
  const ClusterSpec cluster = dgx2_cluster();
  print_banner(std::cout,
               "Figure 6e — activation-checkpoint CPU offload overhead vs "
               "hidden size");

  Table t({"hidden", "TF/GPU (ckpt on GPU)", "TF/GPU (ckpt on CPU)",
           "slowdown"});
  for (const NamedConfig& named : table8_configs()) {
    SimConfig cfg = named.sim;
    cfg.act_tier = SimConfig::TierOpt::kGpu;
    const SimResult on_gpu = simulate_iteration(cfg, cluster);
    cfg.act_tier = SimConfig::TierOpt::kCpu;
    const SimResult on_cpu = simulate_iteration(cfg, cluster);
    t.add_row({named.label, Table::num(on_gpu.tflops_per_gpu, 1),
               Table::num(on_cpu.tflops_per_gpu, 1),
               Table::num(on_gpu.tflops_per_gpu /
                              std::max(1e-9, on_cpu.tflops_per_gpu),
                          2) +
                   "x"});
  }
  t.print(std::cout);
  std::cout << "\npaper: up to 1.2x at hd 2K, ~1.0x at hd 32K and 64K\n";
  return 0;
}
