// Figure 6c: gradient-offload bandwidth — ZeRO-Infinity (bandwidth-centric
// partitioning: every GPU's PCIe link streams its 1/dp gradient slice) vs
// ZeRO-Offload (layer-granular ownership through a single PCIe link), on
// the backward time of an 8B-parameter model, 4-64 GPUs (Table 6).
#include <iostream>

#include "sim/model_zoo.hpp"
#include "sim/report.hpp"

using namespace zi::sim;

int main() {
  const ClusterSpec cluster = dgx2_cluster();
  print_banner(std::cout,
               "Figure 6c — 8B model backward time: ZeRO-Infinity vs "
               "ZeRO-Offload gradient offload");

  Table t({"GPUs", "ZeRO-Infinity bwd (s)", "ZeRO-Offload bwd (s)",
           "speedup"});
  for (const int gpus : {4, 16, 32, 64}) {
    SimConfig cfg;
    cfg.strategy = Strategy::kZeroOffload;
    cfg.nodes = std::max(1, gpus / 16);
    cfg.model.layers = 10;
    cfg.model.hidden = 8192;
    cfg.model.attn_heads = 16;
    cfg.model.batch_per_gpu = 2;

    cfg.bandwidth_centric = true;
    const SimResult inf = simulate_iteration(cfg, cluster);
    cfg.bandwidth_centric = false;
    const SimResult off = simulate_iteration(cfg, cluster);

    t.add_row({std::to_string(gpus), Table::num(inf.bwd_time, 2),
               Table::num(off.bwd_time, 2),
               Table::num(off.bwd_time / inf.bwd_time, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\npaper: speedup grows to ~2x at 64 GPUs (aggregate vs "
               "single PCIe bandwidth)\n";
  return 0;
}
