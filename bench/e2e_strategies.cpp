// End-to-end REAL execution across the full Table 2 strategy matrix: every
// configuration trains the same (scaled-down) GPT on 4 rank threads and
// reports loss trajectory, wall-clock per step, and where the bytes live.
//
// This is the functional companion to the simulated figures: the loss
// column demonstrates that all placements are exact transformations
// (bit-identical trajectories), and the memory columns reproduce the
// Table 2 placement taxonomy on real tiers (arena / heap / NVMe file).
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/megatron_engine.hpp"
#include "model/tensor_parallel.hpp"
#include "model/gpt.hpp"
#include "sim/report.hpp"

using namespace zi;
using zi::sim::Table;
using zi::sim::print_banner;

namespace {

struct Outcome {
  float first_loss = 0, last_loss = 0;
  double ms_per_step = 0;
  std::uint64_t gpu_peak = 0, cpu_peak = 0, nvme_peak = 0;
  std::uint64_t prefetch_hits = 0;
};

Outcome run(EngineConfig cfg, const std::filesystem::path& dir) {
  GptConfig mc;
  mc.vocab = 64;
  mc.seq = 16;
  mc.hidden = 32;
  mc.layers = 2;
  mc.heads = 4;
  cfg.nvme_dir = dir.string();
  cfg.loss_scale.init_scale = 1024.0f;
  cfg.adam.lr = 5e-3f;

  constexpr int kWorld = 4;
  constexpr int kSteps = 8;
  constexpr int kBatch = 2;
  Outcome out;
  AioEngine aio;
  run_ranks(kWorld, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(kBatch * mc.seq), targets(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = static_cast<std::int32_t>((comm.rank() * 7 + i * 3) % 63);
      targets[i] = static_cast<std::int32_t>((tokens[i] * 5 + 1) % 63);
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < kSteps; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) {
        if (s == 0) out.first_loss = st.global_loss;
        if (s == kSteps - 1) out.last_loss = st.global_loss;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (comm.rank() == 0) {
      out.ms_per_step =
          std::chrono::duration<double, std::milli>(t1 - t0).count() / kSteps;
      const auto& acc = engine.resources().accountant();
      out.gpu_peak = acc.peak(Tier::kGpu);
      out.cpu_peak = acc.peak(Tier::kCpu);
      out.nvme_peak = acc.peak(Tier::kNvme);
      out.gpu_peak =
          std::max<std::uint64_t>(out.gpu_peak,
                                  engine.resources().gpu().stats().peak_used);
      if (engine.coordinator() != nullptr) {
        out.prefetch_hits = engine.coordinator()->stats().prefetch_hits;
      }
    }
  });
  return out;
}

/// ZI_BENCH_JSON=<path>: machine-readable results for CI bench tracking —
/// one object per strategy with the same numbers the table prints.
void write_bench_json(
    const char* path,
    const std::vector<std::pair<std::string, Outcome>>& results) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "[zi] ZI_BENCH_JSON: cannot open " << path << "\n";
    return;
  }
  out << "{\"bench\":\"e2e_strategies\",\"strategies\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [name, o] = results[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << name << "\""
        << ",\"ms_per_step\":" << o.ms_per_step
        << ",\"first_loss\":" << o.first_loss
        << ",\"last_loss\":" << o.last_loss
        << ",\"gpu_peak_bytes\":" << o.gpu_peak
        << ",\"cpu_peak_bytes\":" << o.cpu_peak
        << ",\"nvme_peak_bytes\":" << o.nvme_peak
        << ",\"prefetch_hits\":" << o.prefetch_hits << "}";
  }
  out << "]}\n";
}

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("zi_e2e_bench_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  print_banner(std::cout,
               "Real end-to-end training across the Table 2 strategy matrix "
               "(tiny GPT, 4 ranks, 8 steps)");

  const std::pair<const char*, EngineConfig> configs[] = {
      {"Data parallel", preset_data_parallel()},
      {"ZeRO-1", preset_zero1()},
      {"ZeRO-2", preset_zero2()},
      {"ZeRO-Offload", preset_zero_offload()},
      {"ZeRO-3", preset_zero3()},
      {"ZeRO-Inf-CPU", preset_zero_infinity_cpu()},
      {"ZeRO-Inf-NVMe", preset_zero_infinity_nvme()},
  };

  std::vector<std::pair<std::string, Outcome>> results;
  Table t({"strategy", "loss step1", "loss step8", "ms/step", "GPU peak",
           "CPU peak", "NVMe peak", "prefetch hits"});
  for (const auto& [name, cfg] : configs) {
    const Outcome o = run(cfg, dir / name);
    t.add_row({name, Table::num(o.first_loss, 6), Table::num(o.last_loss, 6),
               Table::num(o.ms_per_step, 1), format_bytes(o.gpu_peak),
               format_bytes(o.cpu_peak), format_bytes(o.nvme_peak),
               std::to_string(o.prefetch_hits)});
    results.emplace_back(name, o);
  }
  // The 3D-parallelism baseline (tensor-parallel x data-parallel, no
  // ZeRO): a DIFFERENT model implementation (TpGpt) on a 2x2 grid, so its
  // loss column is not comparable — shown for the memory/usability
  // contrast (model states stay on GPU, replicated across dp).
  {
    TpGpt::Config mc;
    mc.vocab = 64;
    mc.seq = 16;
    mc.hidden = 32;
    mc.layers = 2;
    mc.heads = 4;
    MegatronConfig mcfg;
    mcfg.tp = 2;
    mcfg.adam.lr = 5e-3f;
    mcfg.loss_scale.init_scale = 1024.0f;
    Outcome o;
    AioEngine aio2;
    run_ranks(4, [&](Communicator& comm) {
      MegatronEngine::Grid grid = MegatronEngine::make_grid(comm, mcfg.tp);
      TpGpt model(mc, grid.tp);
      MegatronEngine engine(model, comm, std::move(grid), mcfg);
      const int dp_rank = comm.rank() / mcfg.tp;
      std::vector<std::int32_t> tokens(2 * static_cast<std::size_t>(mc.seq));
      std::vector<std::int32_t> targets(tokens.size());
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        tokens[i] = static_cast<std::int32_t>((dp_rank * 7 + i * 3) % 63);
        targets[i] = static_cast<std::int32_t>((tokens[i] * 5 + 1) % 63);
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (int s = 0; s < 8; ++s) {
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) {
          if (s == 0) o.first_loss = st.global_loss;
          if (s == 7) o.last_loss = st.global_loss;
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      if (comm.rank() == 0) {
        o.ms_per_step =
            std::chrono::duration<double, std::milli>(t1 - t0).count() / 8;
        o.gpu_peak = engine.gpu().stats().peak_used;
      }
    });
    t.add_row({"3D par. (tp=2, rewritten model)", Table::num(o.first_loss, 6),
               Table::num(o.last_loss, 6), Table::num(o.ms_per_step, 1),
               format_bytes(o.gpu_peak), "0 B", "0 B", "-"});
    results.emplace_back("3D parallel (tp=2)", o);
  }
  t.print(std::cout);
  if (const char* json_path = std::getenv("ZI_BENCH_JSON")) {
    if (json_path[0] != '\0') write_bench_json(json_path, results);
  }
  std::cout << "\nAll ZeRO strategies report IDENTICAL loss columns "
               "(exactness of the ZeRO transformations); the placement "
               "columns shift bytes down the GPU -> CPU -> NVMe hierarchy "
               "per Table 2. The 3D-parallelism row required rewriting the "
               "model with tensor-parallel layers and keeps all states in "
               "GPU memory.\n";
  std::filesystem::remove_all(dir);
  return 0;
}
