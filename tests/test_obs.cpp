// Observability layer tests: Tracer ring buffers and Chrome trace-event
// export, MetricsSink JSONL step reports, env-var activation, and the
// acceptance criterion — a short ZeRO-3 + NVMe run must produce spans from
// all four layers (engine phase, coordinator gather/prefetch, AIO
// sub-request, collective) on named per-thread tracks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/coordinator.hpp"
#include "core/engine.hpp"
#include "model/gpt.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

// Structural JSON check: strings/escapes honored, braces/brackets balanced,
// no trailing garbage. Enough to guarantee Perfetto/chrome://tracing can
// parse the document without pulling in a JSON library.
bool json_structurally_valid(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool seen_root = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        if (seen_root && stack.empty()) return false;  // trailing garbage
        seen_root = true;
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return seen_root && stack.empty() && !in_string;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_obs_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    Tracer::instance().set_enabled(false);
    Tracer::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().set_output_path({});  // defang the atexit flush
    Tracer::instance().reset();
    MetricsSink::instance().close();
    ::unsetenv("ZI_TRACE");
    ::unsetenv("ZI_METRICS");
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

GptConfig tiny_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.checkpoint_activations = false;
  return cfg;
}

TEST_F(ObsTest, FormatEventRendersLegacyStrings) {
  DataMovementEvent e;
  e.kind = DataMovementEvent::Kind::kGather;
  e.param = "m.a.w";
  e.tier = Placement::kNvme;
  e.for_backward = true;
  EXPECT_EQ(format_event(e), "allgather  m.a.w  <- NVMe  (for backward)");
  e.broadcast = true;
  e.for_backward = false;
  EXPECT_EQ(format_event(e), "broadcast  m.a.w  <- NVMe  (for forward)");
  e.kind = DataMovementEvent::Kind::kRelease;
  EXPECT_EQ(format_event(e), "release    m.a.w");
  e.kind = DataMovementEvent::Kind::kPrefetch;
  e.pinned_staging = true;
  EXPECT_EQ(format_event(e), "prefetch   m.a.w  (async, pinned buffer)");
  e.pinned_staging = false;
  EXPECT_EQ(format_event(e), "prefetch   m.a.w  (async, heap staging)");
  e.kind = DataMovementEvent::Kind::kReduceScatter;
  e.tier = Placement::kCpu;
  EXPECT_EQ(format_event(e), "reducescat m.a.w  -> grad shard on CPU");
}

TEST_F(ObsTest, DisabledMacrosRecordNothing) {
  ASSERT_FALSE(Tracer::enabled());
  const auto before = Tracer::instance().stats().events_recorded;
  ZI_TRACE_SPAN("test", "never");
  ZI_TRACE_INSTANT("test", "never");
  EXPECT_EQ(Tracer::instance().stats().events_recorded, before);
}

TEST_F(ObsTest, SpanAndInstantExportAsChromeTraceJson) {
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(true);
  Tracer::set_thread_name("main");
  {
    ZI_TRACE_SPAN("test", "outer", "\"k\":1");
    ZI_TRACE_INSTANT("test", "tick");
  }
  tracer.set_enabled(false);
  const std::string json = tracer.export_json();
  EXPECT_TRUE(json_structurally_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":1"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_GE(tracer.stats().events_recorded, 2u);
}

TEST_F(ObsTest, RingWrapOverwritesOldestAndCountsDrops) {
  Tracer& tracer = Tracer::instance();
  tracer.set_ring_capacity(8);
  tracer.set_enabled(true);
  // Fresh thread → fresh ring with the small capacity.
  std::thread t([&] {
    Tracer::set_thread_name("wrap");
    for (int i = 0; i < 100; ++i) {
      tracer.record_instant("test", "e" + std::to_string(i));
    }
  });
  t.join();
  tracer.set_enabled(false);
  const auto stats = tracer.stats();
  EXPECT_GE(stats.events_dropped, 92u);
  const std::string json = tracer.export_json();
  EXPECT_TRUE(json_structurally_valid(json)) << json;
  EXPECT_EQ(json.find("\"name\":\"e0\""), std::string::npos);  // overwritten
  EXPECT_NE(json.find("\"name\":\"e99\""), std::string::npos);  // newest kept
  tracer.set_ring_capacity(1 << 16);
}

// The acceptance criterion: a 3-step ZeRO-3 + NVMe run with tracing on
// yields a valid Chrome trace with spans from all four layers, one track
// per rank thread plus the AIO pool threads.
TEST_F(ObsTest, ZeroThreeNvmeRunTracesAllFourLayers) {
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(true);

  const GptConfig mc = tiny_model();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = (dir_ / "trace").string();
  cfg.loss_scale.init_scale = 1024.0f;
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(static_cast<std::size_t>(mc.seq), 1);
    std::vector<std::int32_t> targets(tokens.size(), 2);
    for (int s = 0; s < 3; ++s) engine.train_step(tokens, targets);
  });
  tracer.set_enabled(false);

  const std::string json = tracer.export_json();
  ASSERT_TRUE(json_structurally_valid(json));
  // All four instrumentation layers present…
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"coord\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"comm\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"aio\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"mem\""), std::string::npos);
  // …with the expected span names.
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fwd\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bwd\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"opt\""), std::string::npos);
  EXPECT_NE(json.find("gather:"), std::string::npos);
  EXPECT_NE(json.find("prefetch:"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"allgather\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reduce_scatter\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"read\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"arena_alloc\""), std::string::npos);
  // One named track per rank thread plus the AIO workers.
  EXPECT_NE(json.find("\"name\":\"rank0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"aio0\""), std::string::npos);
  // write_json round-trips to disk.
  const std::string path = (dir_ / "trace.json").string();
  ASSERT_TRUE(tracer.write_json(path));
  EXPECT_GT(fs::file_size(path), 0u);
}

TEST_F(ObsTest, MetricsSinkWritesOneJsonLinePerStep) {
  const std::string path = (dir_ / "metrics.jsonl").string();
  MetricsSink::instance().open(path);
  ASSERT_TRUE(MetricsSink::enabled());

  const GptConfig mc = tiny_model();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = (dir_ / "metrics").string();
  cfg.loss_scale.init_scale = 1024.0f;
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(static_cast<std::size_t>(mc.seq), 1);
    std::vector<std::int32_t> targets(tokens.size(), 2);
    for (int s = 0; s < 3; ++s) engine.train_step(tokens, targets);
  });
  MetricsSink::instance().close();
  EXPECT_FALSE(MetricsSink::enabled());

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(json_structurally_valid(line)) << line;
    EXPECT_NE(line.find("\"step\":" + std::to_string(lines)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"step_seconds\":"), std::string::npos);
    EXPECT_NE(line.find("\"allgather_bytes\":"), std::string::npos);
    EXPECT_NE(line.find("\"aio_bytes_read\":"), std::string::npos);
    EXPECT_NE(line.find("\"prefetch_hit_rate\":"), std::string::npos);
    EXPECT_NE(line.find("\"gpu_peak\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 3);  // one report per (step, rank)
}

TEST_F(ObsTest, StepReportJsonLineIsSelfContained) {
  StepReport r;
  r.step = 7;
  r.rank = 1;
  r.world = 4;
  r.loss = 2.5f;
  r.skipped = true;
  r.prefetch_hit_rate = 0.75;
  r.allgather_bytes = 12345;
  const std::string line = r.to_json_line();
  EXPECT_TRUE(json_structurally_valid(line)) << line;
  EXPECT_NE(line.find("\"step\":7"), std::string::npos);
  EXPECT_NE(line.find("\"rank\":1"), std::string::npos);
  EXPECT_NE(line.find("\"world\":4"), std::string::npos);
  EXPECT_NE(line.find("\"skipped\":true"), std::string::npos);
  EXPECT_NE(line.find("\"prefetch_hit_rate\":0.75"), std::string::npos);
  EXPECT_NE(line.find("\"allgather_bytes\":12345"), std::string::npos);
}

TEST_F(ObsTest, EnvVarsActivateTracerAndMetrics) {
  const std::string tpath = (dir_ / "env_trace.json").string();
  const std::string mpath = (dir_ / "env_metrics.jsonl").string();
  ::setenv("ZI_TRACE", tpath.c_str(), 1);
  ::setenv("ZI_METRICS", mpath.c_str(), 1);
  Tracer::instance().init_from_env();
  MetricsSink::instance().init_from_env();
  EXPECT_TRUE(Tracer::enabled());
  EXPECT_TRUE(MetricsSink::enabled());

  ZI_TRACE_INSTANT("test", "env");
  Tracer::instance().flush();
  ASSERT_TRUE(fs::exists(tpath));
  std::ifstream in(tpath);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(json_structurally_valid(ss.str()));
  EXPECT_NE(ss.str().find("\"name\":\"env\""), std::string::npos);

  StepReport r;
  r.step = 1;
  MetricsSink::instance().write(r);
  MetricsSink::instance().close();
  ASSERT_TRUE(fs::exists(mpath));
  EXPECT_GT(fs::file_size(mpath), 0u);
}

}  // namespace
}  // namespace zi
