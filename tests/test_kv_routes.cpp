// KV-cache DataMover routes (kKvFetch/kKvSpill) and TieredKvCache: route
// taxonomy, exactly-once per-route accounting, tier round-trips, and
// fault-injected reads leaving the pinned pool whole.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "common/units.hpp"
#include "core/rank_resources.hpp"
#include "serve/kv_cache.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

class KvRoutesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().clear();
    dir_ = fs::temp_directory_path() /
           ("zi_kv_routes_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(KvRoutesTest, RouteTaxonomy) {
  EXPECT_EQ(kNumRoutes, 8);
  EXPECT_TRUE(route_is_async(Route::kKvFetch));
  EXPECT_TRUE(route_is_async(Route::kKvSpill));
  EXPECT_FALSE(route_is_spill(Route::kKvFetch));
  EXPECT_TRUE(route_is_spill(Route::kKvSpill));
  EXPECT_STREQ(route_name(Route::kKvFetch), "kv>host");
  EXPECT_STREQ(route_name(Route::kKvSpill), "host>kv");
}

TEST_F(KvRoutesTest, FetchSpillKvRoundTripWithExactAccounting) {
  AioEngine aio;
  RankResources res(0, aio, 1 * kMiB, 4 * kMiB, dir_, 64 * 1024, 2);
  DataMover& mover = res.mover();
  const Extent ext = res.nvme().allocate(4096);

  std::vector<std::byte> src(1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 13);
  }
  TransferHandle hs = mover.spill_kv(ext, src, /*offset=*/512);
  hs.wait();
  {
    const auto st = mover.stats();
    EXPECT_EQ(st.route(Route::kKvSpill).bytes, 1024u);
    EXPECT_EQ(st.route(Route::kKvSpill).transfers, 1u);
    EXPECT_EQ(st.route(Route::kKvFetch).bytes, 0u);
  }

  std::vector<std::byte> dst(1024);
  TransferHandle hf = mover.fetch_kv(ext, dst, /*offset=*/512);
  hf.wait();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);

  // Exactly-once: a second wait() on a completed handle must not add
  // bytes, transfers, or latency seconds.
  const auto before = mover.stats();
  EXPECT_EQ(before.route(Route::kKvFetch).bytes, 1024u);
  EXPECT_EQ(before.route(Route::kKvFetch).transfers, 1u);
  hf.wait();
  hs.wait();
  const auto after = mover.stats();
  EXPECT_EQ(after.route(Route::kKvFetch).bytes,
            before.route(Route::kKvFetch).bytes);
  EXPECT_EQ(after.route(Route::kKvSpill).bytes,
            before.route(Route::kKvSpill).bytes);
  EXPECT_EQ(after.route(Route::kKvFetch).transfers,
            before.route(Route::kKvFetch).transfers);
  EXPECT_DOUBLE_EQ(after.route(Route::kKvFetch).seconds,
                   before.route(Route::kKvFetch).seconds);
  EXPECT_DOUBLE_EQ(after.route(Route::kKvSpill).seconds,
                   before.route(Route::kKvSpill).seconds);
  // KV traffic never leaks into the weight-streaming NVMe routes.
  EXPECT_EQ(after.route(Route::kNvmeFetch).bytes, 0u);
  EXPECT_EQ(after.route(Route::kNvmeSpill).bytes, 0u);
}

TEST_F(KvRoutesTest, KvRangeChecksReject) {
  AioEngine aio;
  RankResources res(0, aio, 1 * kMiB, 4 * kMiB, dir_, 64 * 1024, 2);
  const Extent ext = res.nvme().allocate(1024);
  // Extents round up to the I/O alignment: overflow past the *actual* size.
  std::vector<std::byte> buf(ext.size() + 8);
  EXPECT_THROW({ auto h = res.mover().fetch_kv(ext, buf, /*offset=*/0); },
               Error);
}

// One decode round through the NVMe-tier cache: append rows (spill), read
// them back (fetch), with per-route byte counts matching the row math.
TEST_F(KvRoutesTest, TieredCacheNvmeRoundTrip) {
  AioEngine aio;
  RankResources res(0, aio, 1 * kMiB, 4 * kMiB, dir_, 64 * 1024, 2);
  constexpr std::int64_t kLayers = 2, kCap = 8, kDim = 4;
  TieredKvCache cache(res, KvTier::kNvme, kLayers, kCap, kDim, 2);
  EXPECT_EQ(cache.slot_bytes(),
            static_cast<std::uint64_t>(kLayers) * 2 * kCap * kDim * 4);

  KvLayerView v = cache.acquire(0, 1, /*used_rows=*/0);  // len 0: no read
  EXPECT_EQ(res.mover().stats().route(Route::kKvFetch).bytes, 0u);
  for (std::int64_t i = 0; i < 3 * kDim; ++i) {
    v.k[i] = static_cast<float>(i) + 0.25f;
    v.v[i] = -static_cast<float>(i) - 0.5f;
  }
  cache.release(0, 1, /*start_row=*/0, /*new_rows=*/3);
  cache.wait_spills();
  const std::uint64_t row_bytes = 3 * kDim * sizeof(float);
  EXPECT_EQ(res.mover().stats().route(Route::kKvSpill).bytes, 2 * row_bytes);
  EXPECT_EQ(res.mover().stats().route(Route::kKvSpill).transfers, 2u);

  KvLayerView v2 = cache.acquire(0, 1, /*used_rows=*/3);
  EXPECT_EQ(res.mover().stats().route(Route::kKvFetch).bytes, 2 * row_bytes);
  for (std::int64_t i = 0; i < 3 * kDim; ++i) {
    EXPECT_EQ(v2.k[i], static_cast<float>(i) + 0.25f);
    EXPECT_EQ(v2.v[i], -static_cast<float>(i) - 0.5f);
  }
  // Other (slot, layer) coordinates are untouched: layer 0 reads back the
  // zero-fill... NVMe extents are not pre-zeroed, so instead verify slot
  // isolation by writing slot 1 and re-reading slot 0.
  KvLayerView w = cache.acquire(1, 1, 0);
  for (std::int64_t i = 0; i < kDim; ++i) w.k[i] = 99.0f;
  cache.release(1, 1, 0, 1);
  KvLayerView v3 = cache.acquire(0, 1, 3);
  EXPECT_EQ(v3.k[0], 0.25f);
}

TEST_F(KvRoutesTest, TieredCacheCpuUsesKvRoutes) {
  AioEngine aio;
  RankResources res(0, aio, 1 * kMiB, 4 * kMiB, dir_, 64 * 1024, 2);
  TieredKvCache cache(res, KvTier::kCpu, 1, 4, 4, 1);
  KvLayerView v = cache.acquire(0, 0, 0);
  for (int i = 0; i < 8; ++i) v.k[i] = static_cast<float>(i);
  cache.release(0, 0, 0, 2);
  const auto st = res.mover().stats();
  EXPECT_EQ(st.route(Route::kKvSpill).bytes, 2u * 2 * 4 * sizeof(float));
  KvLayerView v2 = cache.acquire(0, 0, 2);
  EXPECT_EQ(v2.k[7], 7.0f);
  EXPECT_EQ(res.mover().stats().route(Route::kKvFetch).bytes,
            2u * 2 * 4 * sizeof(float));
}

TEST_F(KvRoutesTest, TieredCacheGpuIsResidentNoTraffic) {
  AioEngine aio;
  RankResources res(0, aio, 1 * kMiB, 4 * kMiB, dir_, 64 * 1024, 2);
  TieredKvCache cache(res, KvTier::kGpu, 1, 4, 4, 1);
  KvLayerView v = cache.acquire(0, 0, 0);
  v.k[0] = 7.0f;
  cache.release(0, 0, 0, 1);
  KvLayerView v2 = cache.acquire(0, 0, 1);
  EXPECT_EQ(v2.k[0], 7.0f);  // same resident memory
  const auto st = res.mover().stats();
  EXPECT_EQ(st.route(Route::kKvFetch).bytes, 0u);
  EXPECT_EQ(st.route(Route::kKvSpill).bytes, 0u);
}

// A persistent read fault during a KV fetch surfaces as a clean error
// (after the AIO retry budget), the cache stays usable once the fault
// clears, and no pinned staging buffer is stranded by the unwind.
TEST_F(KvRoutesTest, FaultedKvFetchSurfacesAndPinnedPoolStaysWhole) {
  AioEngine aio;
  RankResources res(0, aio, 1 * kMiB, 4 * kMiB, dir_, 64 * 1024, 2);
  {
    TieredKvCache cache(res, KvTier::kNvme, 1, 4, 4, 1);
    KvLayerView v = cache.acquire(0, 0, 0);
    for (int i = 0; i < 8; ++i) {
      v.k[i] = static_cast<float>(i);
      v.v[i] = static_cast<float>(-i);
    }
    cache.release(0, 0, 0, 2);
    cache.wait_spills();

    FaultInjector::instance().configure("aio_read:error,after=0");
    EXPECT_THROW(cache.acquire(0, 0, 2), Error);
    FaultInjector::instance().clear();

    // Recovery: the same fetch succeeds and the data is intact.
    KvLayerView v2 = cache.acquire(0, 0, 2);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(v2.k[i], static_cast<float>(i));
      EXPECT_EQ(v2.v[i], static_cast<float>(-i));
    }
  }
  // The cache (and its staging lease) are gone: every buffer is back.
  EXPECT_EQ(res.pinned().available(), res.pinned().num_buffers());
}

}  // namespace
}  // namespace zi
