// End-to-end elastic restart: kill a rank mid-run, shrink, resume, verify.
//
// The headline scenario is the paper's operational story stretched to
// failure tolerance: a 4-rank ZeRO-3 + NVMe world loses rank 2 to an
// injected crash mid-step, the survivors unblock through the poisoned
// world (never a hang — a test-level watchdog aborts the process if the
// supervisor wedges), and the elastic supervisor relaunches a 3-rank world
// that resumes from the newest intact checkpoint. Because checkpoints are
// universal (world-size-independent) and collectives accumulate in
// deterministic rank order, the resumed trajectory must be *bit-identical*
// to a clean 3-rank run resumed from a copy of the very same checkpoint.
//
// The kill ordinal is calibrated, not guessed: a probe run with a
// never-firing rank_crash rule counts collective entries per rank, and the
// real rule fires at 3/4 of that count — deep enough that the step-6
// checkpoint is committed, early enough that step 10 has not finished.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.hpp"
#include "core/ckpt_io.hpp"
#include "core/elastic.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/tokenizer.hpp"
#include "model/gpt.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

/// Same tiny-GPT setup as test_checkpoint_crash: 10 steps, checkpoints at
/// 3/6/9, but on the full ZeRO-3 + NVMe preset and variable world sizes.
struct TrainSetup {
  GptConfig mc;
  TokenDataset data{std::vector<std::int32_t>(400, 1), 16};

  TrainSetup() {
    ByteTokenizer tok;
    std::string corpus;
    for (int i = 0; i < 30; ++i) corpus += "the quick brown fox jumps. ";
    mc.vocab = tok.vocab_size();
    mc.seq = 16;
    mc.hidden = 32;
    mc.layers = 2;
    mc.heads = 4;
    data = TokenDataset(tok.encode(corpus), mc.seq);
  }

  TrainerConfig trainer_config(const fs::path& dir) const {
    TrainerConfig tc;
    tc.total_steps = 10;
    tc.batch_per_rank = 2;
    tc.micro_batches = 1;
    tc.checkpoint_every = 3;  // checkpoints at steps 3, 6, 9
    tc.checkpoint_keep = 3;
    tc.checkpoint_path = (dir / "run.ckpt").string();
    tc.schedule.base_lr = 5e-3f;
    tc.schedule.warmup_steps = 2;
    tc.schedule.total_steps = 10;
    return tc;
  }

  EngineConfig engine_config(const fs::path& dir) const {
    EngineConfig cfg = preset_zero_infinity_nvme();
    cfg.nvme_dir = (dir / "swap").string();
    cfg.loss_scale.init_scale = 1024.0f;
    return cfg;
  }

  /// A clean legacy-options run (no deadlines) that mirrors the elastic
  /// attempt body op-for-op — including try_resume() — so fault-site
  /// ordinals measured here transfer exactly to the supervised run.
  std::pair<std::vector<float>, std::int64_t> run(const fs::path& dir,
                                                  int ranks, AioEngine& aio) {
    const TrainerConfig tc = trainer_config(dir);
    const EngineConfig cfg = engine_config(dir);
    std::vector<float> losses;
    std::int64_t resumed = -1;
    run_ranks(ranks, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      Trainer trainer(engine, comm, data, nullptr, tc);
      const std::int64_t r = trainer.try_resume();
      const TrainerReport report = trainer.run();
      if (comm.rank() == 0) {
        losses = report.train_losses;
        resumed = r;
      }
    });
    return {losses, resumed};
  }
};

/// Test-level watchdog: the one outcome this suite exists to forbid is a
/// hang, so a wedged supervisor fails loudly instead of eating the ctest
/// timeout.
ElasticReport run_elastic_guarded(const ElasticConfig& ec,
                                  const EngineConfig& cfg, AioEngine& aio,
                                  const TokenDataset& data,
                                  const ModelFactory& factory,
                                  std::chrono::seconds limit) {
  std::promise<ElasticReport> done;
  std::future<ElasticReport> fut = done.get_future();
  std::thread([&done, &ec, &cfg, &aio, &data, &factory] {
    try {
      done.set_value(run_elastic(ec, cfg, aio, data, nullptr, factory));
    } catch (...) {
      done.set_exception(std::current_exception());
    }
  }).detach();
  if (fut.wait_for(limit) != std::future_status::ready) {
    ADD_FAILURE() << "elastic supervisor hung for " << limit.count()
                  << "s — world abort failed to unblock it";
    std::abort();
  }
  return fut.get();
}

class ElasticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().clear();
    dir_ = fs::temp_directory_path() /
           ("zi_elastic_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(ElasticTest, CleanRunSucceedsOnFirstAttempt) {
  TrainSetup setup;
  AioEngine aio;
  ElasticConfig ec;
  ec.ranks = 2;
  ec.min_ranks = 1;
  ec.trainer = setup.trainer_config(dir_);
  ec.trainer.total_steps = 4;
  ec.trainer.checkpoint_every = 0;
  ec.trainer.checkpoint_path.clear();
  const EngineConfig cfg = setup.engine_config(dir_);

  const ElasticReport rep = run_elastic_guarded(
      ec, cfg, aio, setup.data,
      [&setup] { return std::make_unique<Gpt>(setup.mc); },
      std::chrono::seconds(120));

  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.restarts, 0);
  EXPECT_EQ(rep.final_world, 2);
  ASSERT_EQ(rep.attempts.size(), 1u);
  EXPECT_TRUE(rep.attempts[0].completed);
  EXPECT_EQ(rep.attempts[0].resumed_step, 0);
  EXPECT_EQ(rep.report.train_losses.size(), 4u);
}

TEST_F(ElasticTest, GivesUpWhenSurvivorsWouldDropBelowMinRanks) {
  TrainSetup setup;
  AioEngine aio;
  FaultInjector::instance().configure(
      "seed=11;rank_crash:error,rank=1,after=5,count=1");

  ElasticConfig ec;
  ec.ranks = 2;
  ec.min_ranks = 2;  // losing either rank makes a restart illegal
  ec.trainer = setup.trainer_config(dir_);
  ec.trainer.total_steps = 4;
  ec.trainer.checkpoint_every = 0;
  ec.trainer.checkpoint_path.clear();
  const EngineConfig cfg = setup.engine_config(dir_);

  const ElasticReport rep = run_elastic_guarded(
      ec, cfg, aio, setup.data,
      [&setup] { return std::make_unique<Gpt>(setup.mc); },
      std::chrono::seconds(120));

  EXPECT_FALSE(rep.succeeded);
  EXPECT_EQ(rep.restarts, 0);
  EXPECT_EQ(rep.final_world, 2);
  ASSERT_EQ(rep.attempts.size(), 1u);
  EXPECT_FALSE(rep.attempts[0].completed);
  EXPECT_EQ(rep.attempts[0].kind, WorldFailKind::kException);
  EXPECT_EQ(rep.attempts[0].culprit_rank, 1);
  EXPECT_EQ(rep.attempts[0].ranks_lost, 1);
  EXPECT_TRUE(rep.attempts[0].rank_weights.empty());  // uniform launch
}

TEST_F(ElasticTest, KilledRankRestartsSmallerWorldBitIdentically) {
  TrainSetup setup;
  AioEngine aio;

  // --- Phase A: probe. A rule that can never fire still counts collective
  // entries at the rank_crash site, and every rank runs the identical
  // collective sequence, so per-rank entries = site total / world.
  FaultInjector::instance().configure(
      "seed=3;rank_crash:error,rank=2,after=1000000000");
  const fs::path probe_dir = dir_ / "probe";
  fs::create_directories(probe_dir);
  {
    auto [losses, resumed] = setup.run(probe_dir, 4, aio);
    ASSERT_EQ(losses.size(), 10u);
    ASSERT_EQ(resumed, 0);
  }
  const std::uint64_t total =
      FaultInjector::instance().stats(FaultSite::kRankCrash).ops;
  ASSERT_GT(total, 0u);
  ASSERT_EQ(total % 4, 0u) << "ranks ran asymmetric collective sequences";
  const std::int64_t per_rank = static_cast<std::int64_t>(total / 4);
  const std::int64_t kill_at = per_rank * 3 / 4;  // ~step 7.5 of 10
  ASSERT_GT(kill_at, 0);

  // --- Phase B: the real run. Rank 2 dies at its own kill_at-th collective
  // entry; peers must unblock via poison (well inside the 8 s timeout) and
  // the supervisor must relaunch 3 survivors resuming from a checkpoint.
  FaultInjector::instance().clear();
  FaultInjector::instance().configure(
      "seed=3;rank_crash:error,rank=2,after=" + std::to_string(kill_at) +
      ",count=1");
  const std::uint64_t restarts_before = elastic_restart_count();

  ElasticConfig ec;
  ec.ranks = 4;
  ec.min_ranks = 2;
  ec.max_restarts = 2;
  ec.world.timeout_ms = 8000.0;
  ec.trainer = setup.trainer_config(dir_);
  const EngineConfig cfg = setup.engine_config(dir_);
  const ElasticReport rep = run_elastic_guarded(
      ec, cfg, aio, setup.data,
      [&setup] { return std::make_unique<Gpt>(setup.mc); },
      std::chrono::seconds(300));
  FaultInjector::instance().clear();

  ASSERT_TRUE(rep.succeeded) << (rep.attempts.empty()
                                     ? std::string("no attempts")
                                     : rep.attempts.back().error);
  EXPECT_EQ(rep.restarts, 1);
  EXPECT_EQ(rep.final_world, 3);
  EXPECT_EQ(elastic_restart_count(), restarts_before + 1);
  ASSERT_EQ(rep.attempts.size(), 2u);

  const ElasticAttempt& crashed = rep.attempts[0];
  EXPECT_FALSE(crashed.completed);
  EXPECT_EQ(crashed.world, 4);
  EXPECT_EQ(crashed.kind, WorldFailKind::kException);
  EXPECT_EQ(crashed.culprit_rank, 2);
  EXPECT_EQ(crashed.ranks_lost, 1);  // three victims unblocked, none wedged
  EXPECT_TRUE(crashed.rank_weights.empty());

  const ElasticAttempt& recovered = rep.attempts[1];
  EXPECT_TRUE(recovered.completed);
  EXPECT_EQ(recovered.world, 3);
  // Straggler detection is off (default WorldOptions), so the crash restart
  // has no EWMAs to rebalance from and must keep the legacy uniform shrink.
  EXPECT_TRUE(recovered.rank_weights.empty());
  const std::int64_t resumed = recovered.resumed_step;
  EXPECT_TRUE(resumed == 3 || resumed == 6 || resumed == 9)
      << "resumed from step " << resumed;
  ASSERT_EQ(rep.report.train_losses.size(),
            static_cast<std::size_t>(10 - resumed));

  // --- Phase C: control. Copy the exact checkpoint the survivors resumed
  // from into a fresh directory and run a clean (never-crashed) 3-rank
  // world from it. Universal checkpoints + deterministic rank-order
  // reduction make the two trajectories bitwise equal.
  const fs::path ctrl_dir = dir_ / "control";
  fs::create_directories(ctrl_dir);
  const std::string src = Trainer::checkpoint_file(
      setup.trainer_config(dir_).checkpoint_path, resumed);
  ASSERT_TRUE(fs::exists(src));
  ASSERT_TRUE(fs::exists(ckpt_manifest_path(src)));
  const std::string dst = Trainer::checkpoint_file(
      setup.trainer_config(ctrl_dir).checkpoint_path, resumed);
  fs::copy_file(src, dst);
  fs::copy_file(ckpt_manifest_path(src), ckpt_manifest_path(dst));

  auto [control_losses, control_resumed] = setup.run(ctrl_dir, 3, aio);
  EXPECT_EQ(control_resumed, resumed);
  ASSERT_EQ(control_losses.size(), rep.report.train_losses.size());
  for (std::size_t i = 0; i < control_losses.size(); ++i) {
    EXPECT_EQ(control_losses[i], rep.report.train_losses[i])
        << "post-restart step " << resumed + static_cast<std::int64_t>(i) + 1
        << " diverged from the clean 3-rank run";
  }
}

}  // namespace
}  // namespace zi
