// Pipeline-parallel + full 3D-grid baseline tests.
//
// The strongest claim: pipeline splitting is exact — a 2-stage pipeline
// trains along a bit-identical trajectory to the single-device model,
// because activations cross the stage boundary unchanged. Combined with
// the earlier tensor-parallel equivalence, the full 3D baseline is
// validated layer by layer.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <mutex>

#include "core/engine.hpp"
#include "core/threed_engine.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig untied_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.tie_embeddings = false;  // pipeline stages cannot tie across stages
  cfg.checkpoint_activations = false;
  return cfg;
}

void fixed_batch(int dp_rank, const GptConfig& cfg,
                 std::vector<std::int32_t>& tokens,
                 std::vector<std::int32_t>& targets) {
  tokens.resize(static_cast<std::size_t>(2 * cfg.seq));
  targets.resize(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tokens[i] = static_cast<std::int32_t>((dp_rank * 5 + i * 3) % 31);
    targets[i] = static_cast<std::int32_t>((tokens[i] + 2) % 31);
  }
}

std::vector<float> run_threed(const GptConfig& mc, int world, int tp, int pp,
                              int steps) {
  ThreeDConfig cfg;
  cfg.tp = tp;
  cfg.pp = pp;
  cfg.loss_scale.init_scale = 1024.0f;
  std::vector<float> losses;
  std::mutex m;
  run_ranks(world, [&](Communicator& comm) {
    ThreeDEngine engine(mc, comm, cfg);
    std::vector<std::int32_t> tokens, targets;
    fixed_batch(engine.dp_rank(), mc, tokens, targets);
    for (int s = 0; s < steps; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(m);
        losses.push_back(st.global_loss);
      }
    }
  });
  return losses;
}

TEST(Pipeline, TwoStagesMatchSingleDeviceExactly) {
  const GptConfig mc = untied_model();
  // Single-device reference via the ZeRO engine in pure-DDP mode.
  std::vector<float> reference;
  {
    EngineConfig cfg = preset_data_parallel();
    cfg.loss_scale.init_scale = 1024.0f;
    cfg.nvme_dir = (fs::temp_directory_path() / "zi_pp_ref").string();
    AioEngine aio;
    run_ranks(1, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens, targets;
      fixed_batch(0, mc, tokens, targets);
      for (int s = 0; s < 4; ++s) {
        reference.push_back(engine.train_step(tokens, targets).global_loss);
      }
    });
    fs::remove_all(cfg.nvme_dir);
  }
  const auto pp1 = run_threed(mc, 1, 1, 1, 4);
  const auto pp2 = run_threed(mc, 2, 1, 2, 4);
  ASSERT_EQ(reference.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pp1[i], reference[i]) << "pp1 step " << i;
    EXPECT_EQ(pp2[i], reference[i]) << "pp2 step " << i;
  }
}

TEST(Pipeline, StagesPartitionParameters) {
  GptConfig mc = untied_model();
  mc.layers = 4;
  std::int64_t full = 0, stage_sum = 0;
  {
    PipelineStage whole(mc, 0, 1);
    full = whole.num_local_parameters();
  }
  for (int s = 0; s < 2; ++s) {
    PipelineStage st(mc, s, 2);
    stage_sum += st.num_local_parameters();
    EXPECT_LT(st.num_local_parameters(), full);
  }
  EXPECT_EQ(stage_sum, full);  // stages are a partition of the model
}

TEST(Pipeline, FullThreeDGridTrains) {
  GptConfig mc = untied_model();
  mc.hidden = 16;
  mc.heads = 2;
  mc.layers = 2;
  // 8 ranks: tp=2, pp=2, dp=2 — every axis active.
  const auto losses = run_threed(mc, 8, 2, 2, 6);
  ASSERT_EQ(losses.size(), 6u);
  for (const float l : losses) EXPECT_TRUE(std::isfinite(l));
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Pipeline, DataParallelAxisAverages) {
  // dp=2, pp=2 (world 4): trajectory must equal a 2-rank DDP run of the
  // same untied model with the same per-replica batches.
  const GptConfig mc = untied_model();
  std::vector<float> ddp;
  {
    EngineConfig cfg = preset_data_parallel();
    cfg.loss_scale.init_scale = 1024.0f;
    cfg.nvme_dir = (fs::temp_directory_path() / "zi_pp_ddp").string();
    AioEngine aio;
    run_ranks(2, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens, targets;
      fixed_batch(comm.rank(), mc, tokens, targets);
      for (int s = 0; s < 3; ++s) {
        const float l = engine.train_step(tokens, targets).global_loss;
        if (comm.rank() == 0) ddp.push_back(l);
      }
    });
    fs::remove_all(cfg.nvme_dir);
  }
  const auto threed = run_threed(mc, 4, 1, 2, 3);
  ASSERT_EQ(ddp.size(), threed.size());
  for (std::size_t i = 0; i < ddp.size(); ++i) {
    EXPECT_EQ(threed[i], ddp[i]) << i;
  }
}

TEST(Pipeline, RejectsTiedEmbeddings) {
  GptConfig mc = untied_model();
  mc.tie_embeddings = true;
  EXPECT_THROW(run_threed(mc, 2, 1, 2, 1), Error);
}

TEST(Pipeline, CapacityScalesWithStages) {
  // A model whose replicated footprint overflows one small "GPU" trains
  // when split over two pipeline stages (each holds ~half the states) —
  // the pipeline axis of the Fig. 6a "3D parallelism" row.
  GptConfig mc = untied_model();
  mc.hidden = 64;
  mc.heads = 4;
  mc.layers = 4;
  ThreeDConfig cfg;
  cfg.loss_scale.init_scale = 1024.0f;
  cfg.gpu_arena_bytes = 3 * kMiB;

  cfg.pp = 1;
  EXPECT_THROW(run_ranks(2,
                         [&](Communicator& comm) {
                           ThreeDEngine engine(mc, comm, cfg);
                         }),
               OutOfMemoryError);

  cfg.pp = 2;
  run_ranks(2, [&](Communicator& comm) {
    ThreeDEngine engine(mc, comm, cfg);
    std::vector<std::int32_t> tokens, targets;
    fixed_batch(engine.dp_rank(), mc, tokens, targets);
    const auto st = engine.train_step(tokens, targets);
    EXPECT_TRUE(std::isfinite(st.global_loss));
  });
}

}  // namespace
}  // namespace zi
