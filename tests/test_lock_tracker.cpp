// Runtime lock-order detector tests.
//
// The tracker is process-global state (order graph + enabled flag), so each
// test runs through a fixture that enables tracking, installs a throwing
// handler (turning would-be deadlocks into catchable exceptions), and
// restores everything afterwards — including clearing the graph so edges
// recorded by one test cannot leak into the next.

#include "common/lock_tracker.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

namespace zi {
namespace {

struct ViolationError : std::runtime_error {
  explicit ViolationError(const LockTracker::Violation& v)
      : std::runtime_error(v.description), kind(v.kind) {}
  LockTracker::ViolationKind kind;
};

class LockTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tracker = LockTracker::instance();
    tracker.clear();
    prev_handler_ = tracker.set_violation_handler(
        [](const LockTracker::Violation& v) { throw ViolationError(v); });
    tracker.set_enabled(true);
  }

  void TearDown() override {
    auto& tracker = LockTracker::instance();
    tracker.set_enabled(false);
    tracker.set_violation_handler(std::move(prev_handler_));
    tracker.clear();
  }

  LockTracker::Handler prev_handler_;
};

TEST_F(LockTrackerTest, OrderedAcquisitionIsClean) {
  DebugMutex a("test::a");
  DebugMutex b("test::b");
  for (int i = 0; i < 3; ++i) {
    LockGuard la(a);
    LockGuard lb(b);  // consistent order a -> b: never a violation
  }
  EXPECT_EQ(LockTracker::instance().violation_count(), 0u);
}

TEST_F(LockTrackerTest, OppositeOrdersOnTwoThreadsReported) {
  DebugMutex a("test::a");
  DebugMutex b("test::b");

  // Thread 1 establishes the order a -> b and fully releases before thread 2
  // starts, so the test is deterministic: no real deadlock, but the order
  // graph still carries the evidence.
  std::thread t1([&] {
    LockGuard la(a);
    LockGuard lb(b);
  });
  t1.join();

  bool caught = false;
  std::thread t2([&] {
    LockGuard lb(b);
    try {
      LockGuard la(a);  // b -> a closes the cycle
    } catch (const ViolationError& e) {
      caught = e.kind == LockTracker::ViolationKind::kOrderInversion;
    }
  });
  t2.join();

  EXPECT_TRUE(caught);
  ASSERT_EQ(LockTracker::instance().violation_count(), 1u);
  const auto violations = LockTracker::instance().violations();
  EXPECT_EQ(violations[0].kind, LockTracker::ViolationKind::kOrderInversion);
  // The report names both mutexes.
  EXPECT_NE(violations[0].description.find("test::a"), std::string::npos);
  EXPECT_NE(violations[0].description.find("test::b"), std::string::npos);
}

TEST_F(LockTrackerTest, TransitiveInversionReported) {
  DebugMutex a("test::a");
  DebugMutex b("test::b");
  DebugMutex c("test::c");

  {
    LockGuard la(a);
    LockGuard lb(b);  // a -> b
  }
  {
    LockGuard lb(b);
    LockGuard lc(c);  // b -> c
  }

  bool caught = false;
  {
    LockGuard lc(c);
    try {
      LockGuard la(a);  // c -> a: cycle through b
    } catch (const ViolationError& e) {
      caught = e.kind == LockTracker::ViolationKind::kOrderInversion;
    }
  }
  EXPECT_TRUE(caught);
}

TEST_F(LockTrackerTest, RecursiveAcquisitionReported) {
  DebugMutex m("test::recursive");
  LockGuard outer(m);
  bool caught = false;
  try {
    m.lock();  // would deadlock; the throwing handler aborts it first
  } catch (const ViolationError& e) {
    caught = e.kind == LockTracker::ViolationKind::kRecursiveAcquisition;
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(LockTracker::instance().violation_count(), 1u);
}

TEST_F(LockTrackerTest, HeldCountTracksCurrentThread) {
  DebugMutex a("test::a");
  DebugMutex b("test::b");
  auto& tracker = LockTracker::instance();
  EXPECT_EQ(tracker.held_count(), 0u);
  {
    LockGuard la(a);
    EXPECT_EQ(tracker.held_count(), 1u);
    {
      LockGuard lb(b);
      EXPECT_EQ(tracker.held_count(), 2u);
    }
    EXPECT_EQ(tracker.held_count(), 1u);
  }
  EXPECT_EQ(tracker.held_count(), 0u);
}

TEST_F(LockTrackerTest, ReportDumpsGraphAndViolations) {
  DebugMutex a("test::graph_a");
  DebugMutex b("test::graph_b");
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  const std::string report = LockTracker::instance().report();
  EXPECT_NE(report.find("test::graph_a"), std::string::npos);
  EXPECT_NE(report.find("test::graph_b"), std::string::npos);
}

TEST_F(LockTrackerTest, DestroyedMutexLeavesGraph) {
  DebugMutex a("test::a");
  {
    DebugMutex b("test::b");
    LockGuard la(a);
    LockGuard lb(b);  // a -> b recorded
  }
  // b destroyed: a former b-address reused by a new mutex must not inherit
  // b's edges, so reversing the order against the *new* mutex is clean
  // unless re-observed.
  const std::string report = LockTracker::instance().report();
  EXPECT_EQ(report.find("test::b"), std::string::npos);
}

// The disabled path is the production path: no per-thread state, no graph
// mutations, no violation reports — opposite-order acquisitions included.
TEST(LockTrackerDisabledTest, NoTrackingWhenDisabled) {
  auto& tracker = LockTracker::instance();
  ASSERT_FALSE(tracker.enabled());
  tracker.clear();

  DebugMutex a("disabled::a");
  DebugMutex b("disabled::b");
  {
    LockGuard la(a);
    LockGuard lb(b);
    EXPECT_EQ(tracker.held_count(), 0u);  // nothing recorded
  }
  {
    LockGuard lb(b);
    LockGuard la(a);  // inversion — invisible while disabled
  }
  EXPECT_EQ(tracker.violation_count(), 0u);
  EXPECT_EQ(tracker.report().find("disabled::a"), std::string::npos);
}

// Uncontended lock/unlock throughput with the tracker disabled: the hook is
// one relaxed atomic load, so a million round-trips must stay far below
// anything timing-out. This is a smoke bound (debug + sanitizer builds are
// slow), not a benchmark — the point is that no graph work happens.
TEST(LockTrackerDisabledTest, DisabledFastPathIsCheap) {
  auto& tracker = LockTracker::instance();
  ASSERT_FALSE(tracker.enabled());

  Mutex m("disabled::hot");
  for (int i = 0; i < 1'000'000; ++i) {
    LockGuard lock(m);
  }
  EXPECT_EQ(tracker.violation_count(), 0u);
  EXPECT_EQ(tracker.held_count(), 0u);
}

}  // namespace
}  // namespace zi
