// Tests for the counter-based RNG: determinism and random access are what
// the partitioned-initialization path depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace zi {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42, 0), b(42, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RandomAccessMatchesSequential) {
  Rng seq(7, 3);
  const Rng ra(7, 3);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(seq.next_u64(), ra.at(i)) << i;
  }
}

TEST(Rng, StreamsAreIndependent) {
  const Rng a(42, 0), b(42, 1);
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.at(i) == b.at(i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SeedsChangeEverything) {
  const Rng a(1, 0), b(2, 0);
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (a.at(i) == b.at(i)) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformRange) {
  Rng r(123, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.next_uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng r(99, 5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = r.next_uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r(7, 1);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const float g = r.next_normal();
    sum += g;
    sum2 += static_cast<double>(g) * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalRandomAccessIsStable) {
  const Rng r(11, 2);
  Rng seq(11, 2);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(seq.next_normal(), r.normal_at(i));
  }
}

TEST(Rng, NextBelow) {
  Rng r(5, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, CounterSetAndGet) {
  Rng r(5, 0);
  r.next_u64();
  r.next_u64();
  EXPECT_EQ(r.counter(), 2u);
  r.set_counter(0);
  Rng fresh(5, 0);
  EXPECT_EQ(r.next_u64(), fresh.next_u64());
}

TEST(Rng, Mix64Avalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (std::uint64_t x = 1; x < 1000; ++x) {
    const std::uint64_t d = mix64(x) ^ mix64(x ^ 1);
    total += __builtin_popcountll(d);
  }
  const double avg = total / 999.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

}  // namespace
}  // namespace zi
