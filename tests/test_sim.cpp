// Simulator tests, anchored to numbers the paper itself states.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/efficiency.hpp"
#include "sim/hw_model.hpp"
#include "sim/memory_model.hpp"
#include "sim/model_zoo.hpp"
#include "sim/report.hpp"
#include "sim/timeline.hpp"

namespace zi::sim {
namespace {

ModelShape fig2a_1t() {
  ModelShape m;
  m.layers = 128;
  m.hidden = 25600;
  m.attn_heads = 256;
  m.seq = 1024;
  m.batch_per_gpu = 4;
  return m;
}

// ---------------------------------------------------------------------------
// Memory formulas vs Fig. 2a's printed rows (the paper reports TiB/GiB).

TEST(MemoryModel, Eq1ParameterCountMatchesFig2a) {
  // 1T row: 128 layers x 25600 hidden ⇒ 1.01T params.
  EXPECT_NEAR(fig2a_1t().params(), 1.01e12, 0.01e12);
  // 100B row: 80 x 10240 ⇒ 0.10T.
  ModelShape small;
  small.layers = 80;
  small.hidden = 10240;
  EXPECT_NEAR(small.params(), 0.10e12, 0.005e12);
}

TEST(MemoryModel, Eq2ModelStatesMatchFig2a) {
  // Fig. 2a column 5: 1.01T → 18.31 TB; 0.1T → 1.83 TB (TiB).
  const double tib = static_cast<double>(kTiB);
  EXPECT_NEAR(fig2a_1t().model_state_bytes() / tib, 18.31, 0.2);
  ModelShape small;
  small.layers = 80;
  small.hidden = 10240;
  EXPECT_NEAR(small.model_state_bytes() / tib, 1.83, 0.03);
}

TEST(MemoryModel, Eq3ActivationCheckpointsMatchFig2a) {
  // Column 7 (bsz=32 per node, ci=1): 1T → 0.20 TB; 0.1T → 0.05 TB.
  const double tib = static_cast<double>(kTiB);
  EXPECT_NEAR(fig2a_1t().act_ckpt_bytes(32) / tib, 0.20, 0.01);
  ModelShape small;
  small.layers = 80;
  small.hidden = 10240;
  EXPECT_NEAR(small.act_ckpt_bytes(32) / tib, 0.05, 0.005);
}

TEST(MemoryModel, Eq4MswmMatchesFig2a) {
  // Column 8 "Model State" working memory: 1T → 9.77 GB (GiB).
  EXPECT_NEAR(fig2a_1t().mswm_bytes() / static_cast<double>(kGiB), 9.77, 0.1);
  // 10T row (195 x 65536): 64.00 GiB.
  ModelShape big;
  big.layers = 195;
  big.hidden = 65536;
  EXPECT_NEAR(big.mswm_bytes() / static_cast<double>(kGiB), 64.0, 0.5);
}

TEST(MemoryModel, Eq5AwmMatchesFig2a) {
  // Column 9 "Act." working memory at bsz=4: 1T → 3.56 GiB; 10T → 8.00 GiB.
  const double gib = static_cast<double>(kGiB);
  EXPECT_NEAR(fig2a_1t().awm_bytes(4) / gib, 3.56, 0.05);
  ModelShape big;
  big.layers = 195;
  big.hidden = 65536;
  big.attn_heads = 512;
  big.seq = 1024;
  EXPECT_NEAR(big.awm_bytes(4) / gib, 8.00, 0.1);
}

TEST(MemoryModel, ShapeForParamsInvertsEq1) {
  for (const double p : {1e9, 1e10, 1e11, 1e12, 1e13}) {
    const ModelShape s = shape_for_params(p);
    EXPECT_NEAR(s.params(), p, p * 0.15) << p;
  }
}

// ---------------------------------------------------------------------------
// Efficiency model vs Sec. 4.2's statements.

TEST(Efficiency, Fig3aParamGradAnchor) {
  // "with a bandwidth of over 70 GB/s for parameter and gradients, we can
  // achieve over 50% efficiency for even the smallest batch size [1]".
  const double e = efficiency(ait_param_grad(1, 1024), 70e9, 70e12);
  EXPECT_GT(e, 0.50);
  EXPECT_LT(e, 0.55);
}

TEST(Efficiency, Fig3bOptimizerNeeds4xBandwidth) {
  // "optimizer states require nearly 4x higher bandwidth to achieve 50%
  // efficiency compared to parameters and gradients".
  const double bw_pg = bandwidth_for_efficiency(ait_param_grad(2, 1024), 70e12, 0.5);
  const double bw_os = bandwidth_for_efficiency(ait_optimizer(2, 1024), 70e12, 0.5);
  EXPECT_NEAR(bw_os / bw_pg, 4.0, 0.01);
  // "achieving 90% efficiency with batch size of 2 per GPU requires nearly
  // 1.5 TB/s".
  const double bw90 = bandwidth_for_efficiency(ait_optimizer(2, 1024), 70e12, 0.9);
  EXPECT_GT(bw90, 1.0e12);
  EXPECT_LT(bw90, 1.5e12);
}

TEST(Efficiency, Fig3cActivationAnchors) {
  // "a meager bandwidth of 2 GB/s is able to sustain over 50% efficiency
  // even for a hidden size of 2K".
  EXPECT_GT(efficiency(ait_activation(2048, 1), 2e9, 70e12), 0.5);
  // "drops down to less than 1 GB/s once the hidden size grows over 8K".
  EXPECT_GT(efficiency(ait_activation(8192, 1), 1e9, 70e12), 0.7);
  EXPECT_LT(bandwidth_for_efficiency(ait_activation(8192, 1), 70e12, 0.5), 1e9);
}

TEST(Efficiency, MonotoneInBandwidthAndAit) {
  double prev = 0;
  for (double bw = 1e9; bw <= 1e12; bw *= 2) {
    const double e = efficiency(1024, bw, 70e12);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

// ---------------------------------------------------------------------------
// Capacity model vs Fig. 1 / Fig. 6a.

TEST(Capacity, Fig1MaxModelSizesOn512Gpus) {
  const ClusterSpec c = dgx2_cluster();
  // 3D parallelism: ~0.65T on 512 GPUs (bounded by aggregate GPU memory).
  const double threed = max_model_params(Strategy::kThreeD, c, 32);
  EXPECT_GT(threed, 0.4e12);
  EXPECT_LT(threed, 0.9e12);
  // ZeRO-Infinity: 32T on 32 nodes (bounded by NVMe), "could fit over 100T"
  // in principle on larger clusters.
  const double inf = max_model_params(Strategy::kZeroInfNvme, c, 32);
  EXPECT_GT(inf, 25e12);
  EXPECT_LT(inf, 60e12);
  // The headline: ~50x more than 3D parallelism.
  EXPECT_GT(inf / threed, 30.0);
}

TEST(Capacity, Fig6aStrategyLadderOnOneNode) {
  const ClusterSpec c = dgx2_cluster();
  const double dp = max_model_params(Strategy::kDataParallel, c, 1);
  const double z2 = max_model_params(Strategy::kZero2, c, 1);
  const double off = max_model_params(Strategy::kZeroOffload, c, 1);
  const double z3 = max_model_params(Strategy::kZero3, c, 1);
  const double inf_cpu = max_model_params(Strategy::kZeroInfCpu, c, 1);
  const double inf_nvme = max_model_params(Strategy::kZeroInfNvme, c, 1);

  // Paper anchors: DP 1.4B; ZeRO-2/Offload ~13B; ZeRO-3 ~20B; Inf-CPU
  // "almost 100B"; Inf-NVMe 1T ("700x increase over data parallelism").
  EXPECT_GT(dp, 1.0e9);
  EXPECT_LT(dp, 2.0e9);
  EXPECT_GT(z2, 6e9);
  EXPECT_LT(z2, 16e9);
  EXPECT_GT(off, 9e9);
  EXPECT_LT(off, 20e9);
  EXPECT_GT(z3, 15e9);
  EXPECT_LT(z3, 40e9);
  EXPECT_GT(inf_cpu, 50e9);
  EXPECT_LT(inf_cpu, 130e9);
  EXPECT_GT(inf_nvme, 0.7e12);
  EXPECT_LT(inf_nvme, 2.0e12);

  // The ladder is strictly increasing and ends ~700x above DP.
  EXPECT_LT(dp, z2);
  EXPECT_LT(z2, off);
  EXPECT_LT(off, z3);
  EXPECT_LT(z3, inf_cpu);
  EXPECT_LT(inf_cpu, inf_nvme);
  EXPECT_GT(inf_nvme / dp, 400.0);
}

TEST(Capacity, InfeasibleFootprintNamesTheLimiter) {
  const ClusterSpec c = dgx2_cluster();
  const ModelShape huge = shape_for_params(1e14);
  const MemoryFootprint f =
      strategy_footprint(huge, Strategy::kDataParallel, c, 1);
  EXPECT_FALSE(f.feasible);
  EXPECT_EQ(f.limiter, "GPU memory");
  const MemoryFootprint f2 =
      strategy_footprint(huge, Strategy::kZeroInfNvme, c, 1);
  EXPECT_FALSE(f2.feasible);
  // At 100T on one node both the CPU (activation checkpoints) and the NVMe
  // (model states) budgets are blown; either is a truthful limiter.
  EXPECT_TRUE(f2.limiter == "NVMe capacity" || f2.limiter == "CPU memory")
      << f2.limiter;
}

// ---------------------------------------------------------------------------
// Timeline simulator: behavioral shapes of Figs. 5 and 6.

TEST(Timeline, ThroughputBoundedByAchievablePeak) {
  const ClusterSpec c = dgx2_cluster();
  for (const NamedConfig& cfg : table1_configs()) {
    const SimResult r = simulate_iteration(cfg.sim, c);
    ASSERT_TRUE(r.feasible) << cfg.label;
    EXPECT_GT(r.tflops_per_gpu, 5.0) << cfg.label;
    EXPECT_LE(r.tflops_per_gpu, 70.1) << cfg.label;
  }
}

TEST(Timeline, Fig5a3dParallelismOomsBeyond500B) {
  const ClusterSpec c = dgx2_cluster();
  SimConfig threed;
  threed.strategy = Strategy::kThreeD;
  threed.nodes = 32;
  threed.mp = 4;
  threed.model = shape_for_params(0.5e12);
  EXPECT_TRUE(simulate_iteration(threed, c).feasible);
  threed.model = shape_for_params(5e12);
  const SimResult r = simulate_iteration(threed, c);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.limiter, "GPU memory");
}

TEST(Timeline, Fig5bSuperlinearWeakScaling) {
  // 1T model, NVMe offload, constant batch/GPU: per-GPU throughput must
  // INCREASE with node count (the aggregate-bandwidth superlinearity).
  const ClusterSpec c = dgx2_cluster();
  SimConfig cfg;
  cfg.strategy = Strategy::kZeroInfNvme;
  cfg.mp = 4;
  cfg.model = shape_for_params(1e12);
  cfg.model.batch_per_gpu = 5;
  double prev = 0.0;
  for (const int nodes : {4, 8, 16, 32}) {
    cfg.nodes = nodes;
    const SimResult r = simulate_iteration(cfg, c);
    ASSERT_TRUE(r.feasible) << nodes;
    EXPECT_GT(r.tflops_per_gpu, prev) << nodes << " nodes";
    prev = r.tflops_per_gpu;
  }
  // Paper: already 44 TFlops/GPU at 4 nodes (over 2.8 pflops).
  cfg.nodes = 4;
  EXPECT_GT(simulate_iteration(cfg, c).pflops_total, 2.0);
}

TEST(Timeline, Fig6cBandwidthCentricGradOffloadWins) {
  // 8B model backward: ZeRO-Infinity vs ZeRO-Offload. At 64 GPUs the
  // aggregate-PCIe design is ~2x faster (Sec. 8.6).
  const ClusterSpec c = dgx2_cluster();
  auto backward_time = [&](int gpus, bool bandwidth_centric) {
    SimConfig cfg;
    cfg.strategy = Strategy::kZeroOffload;
    cfg.nodes = std::max(1, gpus / 16);
    cfg.model = ModelShape{10, 8192, 16, 2, 0, 1024, 1};
    cfg.bandwidth_centric = bandwidth_centric;
    const SimResult r = simulate_iteration(cfg, c);
    return r.bwd_time;
  };
  const double speedup64 = backward_time(64, false) / backward_time(64, true);
  EXPECT_GT(speedup64, 1.5);
  EXPECT_LT(speedup64, 3.0);
}

TEST(Timeline, Fig6dOverlapMattersMostAtSmallBatch) {
  const ClusterSpec c = dgx2_cluster();
  auto speedup_at_batch = [&](int batch) {
    SimConfig cfg;
    cfg.strategy = Strategy::kZero3;
    cfg.nodes = 4;
    cfg.model = ModelShape{10, 8192, 16, batch, 0, 1024, 1};
    cfg.overlap = true;
    const double with = simulate_iteration(cfg, c).iter_time;
    cfg.overlap = false;
    const double without = simulate_iteration(cfg, c).iter_time;
    return without / with;
  };
  const double s2 = speedup_at_batch(2);
  const double s16 = speedup_at_batch(16);
  EXPECT_GT(s2, 1.05);      // overlap clearly helps at batch 2
  EXPECT_GT(s2, s16);       // and its impact diminishes at large batch
  EXPECT_LT(s16, 1.2);
}

TEST(Timeline, Fig6eActOffloadOverheadShrinksWithHiddenSize) {
  const ClusterSpec c = dgx2_cluster();
  auto slowdown = [&](std::int64_t hidden) {
    SimConfig cfg;
    cfg.strategy = Strategy::kZeroInfCpu;
    cfg.nodes = 2;
    cfg.model = ModelShape{5, hidden, 16, 4, 0, 1024, 1};
    cfg.act_tier = SimConfig::TierOpt::kGpu;
    const double on_gpu = simulate_iteration(cfg, c).iter_time;
    cfg.act_tier = SimConfig::TierOpt::kCpu;
    const double on_cpu = simulate_iteration(cfg, c).iter_time;
    return on_cpu / on_gpu;
  };
  const double small = slowdown(2048);
  const double large = slowdown(32768);
  EXPECT_GT(small, 1.02);   // visible overhead at hd=2K (paper: up to 1.2x)
  EXPECT_LT(small, 1.5);
  EXPECT_LT(large, 1.10);   // near-negligible at hd=32K
  EXPECT_GT(small, large);
}

TEST(Timeline, OverlapNeverHurts) {
  const ClusterSpec c = dgx2_cluster();
  for (const NamedConfig& cfg : table1_configs()) {
    SimConfig off = cfg.sim;
    off.overlap = false;
    const double with = simulate_iteration(cfg.sim, c).iter_time;
    const double without = simulate_iteration(off, c).iter_time;
    EXPECT_GE(without, with * 0.999) << cfg.label;
  }
}

TEST(Timeline, Table3FutureBandwidthRequirements) {
  // Bandwidth to remain efficient scales linearly with achievable compute
  // (Table 3: 3 GB/s → 30 → 300 per device as compute grows 10x, 100x).
  const double v100 = bandwidth_for_efficiency(ait_activation(8192, 1), 70e12, 0.9);
  const double x10 = bandwidth_for_efficiency(ait_activation(8192, 1), 700e12, 0.9);
  const double x100 = bandwidth_for_efficiency(ait_activation(8192, 1), 7000e12, 0.9);
  EXPECT_NEAR(x10 / v100, 10.0, 0.01);
  EXPECT_NEAR(x100 / v100, 100.0, 0.01);
}

// ---------------------------------------------------------------------------
// Simulator property tests: structural monotonicities that must hold for
// any sensible performance model.

TEST(TimelineProperty, FasterHardwareNeverSlower) {
  ClusterSpec base = dgx2_cluster();
  for (const NamedConfig& cfg : table1_configs()) {
    const SimResult slow = simulate_iteration(cfg.sim, base);
    ClusterSpec fast = base;
    fast.nvme_bw_per_gpu_parallel *= 2;
    fast.cpu_bw_per_gpu_parallel *= 2;
    fast.gpu_gpu_bw *= 2;
    const SimResult quick = simulate_iteration(cfg.sim, fast);
    if (slow.feasible && quick.feasible) {
      EXPECT_LE(quick.iter_time, slow.iter_time * 1.0001) << cfg.label;
    }
  }
}

TEST(TimelineProperty, LargerBatchRaisesEfficiency) {
  const ClusterSpec c = dgx2_cluster();
  SimConfig cfg;
  cfg.strategy = Strategy::kZeroInfNvme;
  cfg.nodes = 4;
  cfg.model = shape_for_params(1e12);
  double prev = 0;
  for (const int batch : {1, 2, 4, 8}) {
    cfg.model.batch_per_gpu = batch;
    const SimResult r = simulate_iteration(cfg, c);
    ASSERT_TRUE(r.feasible);
    EXPECT_GE(r.tflops_per_gpu, prev) << batch;
    prev = r.tflops_per_gpu;
  }
}

TEST(TimelineProperty, DeeperPrefetchNeverHurts) {
  const ClusterSpec c = dgx2_cluster();
  SimConfig cfg;
  cfg.strategy = Strategy::kZeroInfNvme;
  cfg.nodes = 1;
  cfg.model = shape_for_params(100e9);
  cfg.model.batch_per_gpu = 2;
  double prev = 1e300;
  for (const int depth : {1, 2, 4, 8}) {
    cfg.prefetch_depth = depth;
    const SimResult r = simulate_iteration(cfg, c);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.iter_time, prev * 1.0001) << depth;
    prev = r.iter_time;
  }
}

TEST(TimelineProperty, StallAccountingIsConsistent) {
  const ClusterSpec c = dgx2_cluster();
  for (const NamedConfig& cfg : table1_configs()) {
    const SimResult r = simulate_iteration(cfg.sim, c);
    ASSERT_TRUE(r.feasible) << cfg.label;
    EXPECT_GE(r.param_stall, 0.0) << cfg.label;
    EXPECT_LE(r.param_stall, r.iter_time) << cfg.label;
    EXPECT_NEAR(r.fwd_time + r.bwd_time + r.opt_time, r.iter_time,
                r.iter_time * 1e-6)
        << cfg.label;
  }
}

TEST(CapacityProperty, MoreNodesNeverShrinkMaxModel) {
  const ClusterSpec c = dgx2_cluster();
  for (const Strategy s : {Strategy::kZero3, Strategy::kThreeD,
                           Strategy::kZeroInfCpu, Strategy::kZeroInfNvme}) {
    double prev = 0;
    for (const int nodes : {1, 2, 4, 8, 32}) {
      const double p = max_model_params(s, c, nodes);
      EXPECT_GE(p, prev * 0.999) << strategy_name(s) << " nodes " << nodes;
      prev = p;
    }
  }
}

TEST(CapacityProperty, ReplicatedStrategiesDoNotScaleWithNodes) {
  // DP and ZeRO-Offload are bound by a single GPU / node, so adding nodes
  // barely moves the ceiling.
  const ClusterSpec c = dgx2_cluster();
  const double dp1 = max_model_params(Strategy::kDataParallel, c, 1);
  const double dp32 = max_model_params(Strategy::kDataParallel, c, 32);
  EXPECT_LT(dp32 / dp1, 1.2);
  const double off1 = max_model_params(Strategy::kZeroOffload, c, 1);
  const double off32 = max_model_params(Strategy::kZeroOffload, c, 32);
  EXPECT_LT(off32 / off1, 1.3);
}

// ---------------------------------------------------------------------------
// Model zoo + report

TEST(ModelZoo, Table1ShapesMatchNominalParams) {
  for (const NamedConfig& cfg : table1_configs()) {
    EXPECT_NEAR(cfg.sim.model.params(), cfg.params, cfg.params * 0.2)
        << cfg.label;
  }
}

TEST(ModelZoo, CatalogsAreNonEmpty) {
  EXPECT_EQ(table1_configs().size(), 10u);
  EXPECT_EQ(table4_configs().size(), 7u);
  EXPECT_EQ(table5_configs().size(), 4u);
  EXPECT_EQ(table6_configs().size(), 4u);
  EXPECT_EQ(table7_configs().size(), 6u);
  EXPECT_EQ(table8_configs().size(), 5u);
}

TEST(Report, TableFormatsAligned) {
  Table t({"model", "TFlops"});
  t.add_row({"1T", Table::num(48.9, 1)});
  t.add_row({"20T", Table::num(34.0, 1)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| model | TFlops |"), std::string::npos);
  EXPECT_NE(s.find("| 1T    | 48.9   |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only one"}), zi::Error);
}

TEST(Report, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.512, 1), "51.2%");
}

}  // namespace
}  // namespace zi::sim
