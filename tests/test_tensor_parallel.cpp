// Tensor-parallelism tests: communicator subgroups, numerical equivalence
// of tensor-parallel layers with their dense counterparts (slice-copied
// weights), and the Megatron baseline engine end to end — including the
// capacity contrast that motivates Figs. 1/6a.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/megatron_engine.hpp"
#include <filesystem>
#include "model/block.hpp"
#include "model/gpt.hpp"
#include "model/local_store.hpp"
#include "model/tensor_parallel.hpp"

namespace zi {
namespace {

// ---------------------------------------------------------------------------
// Communicator::split

TEST(CommSplit, SubgroupsGetCorrectMembership) {
  run_ranks(6, [](Communicator& comm) {
    // Two groups of 3: colors 0,0,0,1,1,1.
    Communicator sub = comm.split(comm.rank() / 3);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() % 3);
    // Collective inside the subgroup: sum of world ranks of members.
    std::vector<float> v = {static_cast<float>(comm.rank())};
    sub.allreduce_sum<float>(v);
    const float expected = comm.rank() < 3 ? 0 + 1 + 2 : 3 + 4 + 5;
    EXPECT_EQ(v[0], expected);
  });
}

TEST(CommSplit, OrthogonalGridSplits) {
  // 2x2 grid: tp = {0,1},{2,3}; dp = {0,2},{1,3}.
  run_ranks(4, [](Communicator& comm) {
    MegatronEngine::Grid grid = MegatronEngine::make_grid(comm, 2);
    EXPECT_EQ(grid.tp.size(), 2);
    EXPECT_EQ(grid.dp.size(), 2);
    EXPECT_EQ(grid.tp.rank(), comm.rank() % 2);
    EXPECT_EQ(grid.dp.rank(), comm.rank() / 2);
    // tp allreduce sums within the replica.
    std::vector<float> v = {static_cast<float>(comm.rank())};
    grid.tp.allreduce_sum<float>(v);
    EXPECT_EQ(v[0], comm.rank() < 2 ? 1.0f : 5.0f);
    // dp allreduce sums across replicas.
    std::vector<float> w = {static_cast<float>(comm.rank())};
    grid.dp.allreduce_sum<float>(w);
    EXPECT_EQ(w[0], comm.rank() % 2 == 0 ? 2.0f : 4.0f);
  });
}

TEST(CommSplit, RepeatedSplitsDoNotCollide) {
  run_ranks(4, [](Communicator& comm) {
    Communicator a = comm.split(comm.rank() % 2);
    Communicator b = comm.split(comm.rank() % 2);  // same colors, new groups
    std::vector<float> v = {1.0f};
    a.allreduce_sum<float>(v);
    b.allreduce_sum<float>(v);
    EXPECT_EQ(v[0], 4.0f);  // (1 summed over 2) summed over 2
  });
}

// ---------------------------------------------------------------------------
// Numerical equivalence with the dense model.

// Copy the dense block's weights into the tp ranks' slices.
void copy_dense_to_tp(TransformerBlock& dense, TpBlock& tp_block, int tp_rank,
                      int tp, std::int64_t hd, std::int64_t heads) {
  auto dense_params = dense.all_parameters();
  auto tp_params = tp_block.all_parameters();
  std::map<std::string, Parameter*> by_suffix;
  auto suffix_of = [](const std::string& name) {
    return name.substr(name.find(".ln1") != std::string::npos ||
                               name.find('.') == std::string::npos
                           ? 0
                           : 0);
  };
  (void)suffix_of;
  auto find_tp = [&](const std::string& needle) -> Parameter* {
    for (Parameter* p : tp_params) {
      if (p->name().find(needle) != std::string::npos) return p;
    }
    ADD_FAILURE() << "missing tp param " << needle;
    return nullptr;
  };
  auto find_dense = [&](const std::string& needle) -> Parameter* {
    for (Parameter* p : dense_params) {
      if (p->name().find(needle) != std::string::npos) return p;
    }
    ADD_FAILURE() << "missing dense param " << needle;
    return nullptr;
  };

  const std::int64_t local_hd = hd / tp;
  const std::int64_t hs = hd / heads;
  (void)hs;
  // LayerNorms: replicated.
  for (const char* n : {"ln1.gamma", "ln1.beta", "ln2.gamma", "ln2.beta"}) {
    Parameter* d = find_dense(n);
    Parameter* t = find_tp(n);
    for (std::int64_t i = 0; i < d->numel(); ++i) {
      t->full_tensor().set(i, d->full_tensor().get(i));
    }
  }
  // QKV: dense [hd, 3hd] packed q|k|v; tp slice takes columns
  // [rank·local_hd, (rank+1)·local_hd) of each of q, k, v.
  {
    Parameter* dw = find_dense("attn.qkv.weight");
    Parameter* db = find_dense("attn.qkv.bias");
    Parameter* tw = find_tp(".qkv.tp");
    Parameter* tb = find_tp(".qkv.tp" + std::to_string(tp_rank) + ".bias");
    for (std::int64_t r = 0; r < hd; ++r) {
      for (int part = 0; part < 3; ++part) {
        for (std::int64_t c = 0; c < local_hd; ++c) {
          const std::int64_t dense_col = part * hd + tp_rank * local_hd + c;
          const std::int64_t tp_col = part * local_hd + c;
          tw->full_tensor().set(r * 3 * local_hd + tp_col,
                                dw->full_tensor().get(r * 3 * hd + dense_col));
        }
      }
    }
    for (int part = 0; part < 3; ++part) {
      for (std::int64_t c = 0; c < local_hd; ++c) {
        tb->full_tensor().set(part * local_hd + c,
                              db->full_tensor().get(part * hd +
                                                    tp_rank * local_hd + c));
      }
    }
  }
  // Output projection: dense [hd, hd]; tp slice takes ROWS of the local
  // head block. Replicated bias.
  {
    Parameter* dw = find_dense("attn.proj.weight");
    Parameter* db = find_dense("attn.proj.bias");
    Parameter* tw = find_tp(".proj.tp");
    Parameter* tb = find_tp("proj_bias");
    for (std::int64_t r = 0; r < local_hd; ++r) {
      for (std::int64_t c = 0; c < hd; ++c) {
        tw->full_tensor().set(
            r * hd + c,
            dw->full_tensor().get((tp_rank * local_hd + r) * hd + c));
      }
    }
    for (std::int64_t c = 0; c < hd; ++c) {
      tb->full_tensor().set(c, db->full_tensor().get(c));
    }
  }
  // MLP fc1: dense [hd, 4hd]; tp takes columns. fc2: dense [4hd, hd]; tp
  // takes rows. Replicated fc2 bias.
  {
    const std::int64_t local_ffn = 4 * hd / tp;
    Parameter* dw1 = find_dense("mlp.fc1.weight");
    Parameter* db1 = find_dense("mlp.fc1.bias");
    Parameter* tw1 = find_tp(".fc1.tp");
    Parameter* tb1 = find_tp(".fc1.tp" + std::to_string(tp_rank) + ".bias");
    for (std::int64_t r = 0; r < hd; ++r) {
      for (std::int64_t c = 0; c < local_ffn; ++c) {
        tw1->full_tensor().set(
            r * local_ffn + c,
            dw1->full_tensor().get(r * 4 * hd + tp_rank * local_ffn + c));
      }
    }
    for (std::int64_t c = 0; c < local_ffn; ++c) {
      tb1->full_tensor().set(c,
                             db1->full_tensor().get(tp_rank * local_ffn + c));
    }
    Parameter* dw2 = find_dense("mlp.fc2.weight");
    Parameter* db2 = find_dense("mlp.fc2.bias");
    Parameter* tw2 = find_tp(".fc2.tp");
    Parameter* tb2 = find_tp("fc2_bias");
    for (std::int64_t r = 0; r < local_ffn; ++r) {
      for (std::int64_t c = 0; c < hd; ++c) {
        tw2->full_tensor().set(
            r * hd + c,
            dw2->full_tensor().get((tp_rank * local_ffn + r) * hd + c));
      }
    }
    for (std::int64_t c = 0; c < hd; ++c) {
      tb2->full_tensor().set(c, db2->full_tensor().get(c));
    }
  }
}

TEST(TensorParallel, BlockMatchesDenseBlock) {
  constexpr std::int64_t kHd = 16;
  constexpr std::int64_t kHeads = 4;
  constexpr std::int64_t kSeq = 4;
  constexpr int kTp = 2;

  // Reference dense block (single copy outside the world).
  TransformerBlock dense("blk", kHd, kHeads, kSeq);
  dense.finalize();
  LocalParamStore dense_store(dense);
  Tensor x({kSeq, kHd}, DType::kF32);
  Rng rng(3, 0);
  for (std::int64_t i = 0; i < x.numel(); ++i) x.set(i, rng.next_normal());
  Tensor y_ref = dense.run_forward(x.clone());
  Tensor dy({kSeq, kHd}, DType::kF32);
  for (std::int64_t i = 0; i < dy.numel(); ++i) dy.set(i, rng.next_normal());
  dense_store.zero_grads();
  Tensor dx_ref = dense.run_backward(dy.clone());

  run_ranks(kTp, [&](Communicator& comm) {
    TpBlock tp_block("blk", kHd, kHeads, kSeq, comm);
    tp_block.finalize();
    LocalParamStore store(tp_block);
    // Fresh dense replica per rank (same deterministic init as `dense`).
    TransformerBlock dense_local("blk", kHd, kHeads, kSeq);
    dense_local.finalize();
    LocalParamStore dls(dense_local);
    copy_dense_to_tp(dense_local, tp_block, comm.rank(), kTp, kHd, kHeads);

    Tensor y = tp_block.run_forward(x.clone());
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      EXPECT_NEAR(y.get(i), y_ref.get(i), 2e-4f) << "fwd " << i;
    }
    store.zero_grads();
    Tensor dx = tp_block.run_backward(dy.clone());
    for (std::int64_t i = 0; i < dx.numel(); ++i) {
      EXPECT_NEAR(dx.get(i), dx_ref.get(i), 2e-3f) << "bwd " << i;
    }
  });
}

// ---------------------------------------------------------------------------
// Megatron baseline engine

TpGpt::Config tiny_tp() {
  TpGpt::Config cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 4;
  return cfg;
}

TEST(MegatronEngine, TrainsOnTpByDpGrid) {
  const TpGpt::Config mc = tiny_tp();
  MegatronConfig cfg;
  cfg.tp = 2;
  cfg.adam.lr = 5e-3f;
  cfg.loss_scale.init_scale = 1024.0f;

  std::vector<float> losses;
  std::mutex m;
  run_ranks(4, [&](Communicator& comm) {
    MegatronEngine::Grid grid = MegatronEngine::make_grid(comm, cfg.tp);
    TpGpt model(mc, grid.tp);
    MegatronEngine engine(model, comm, std::move(grid), cfg);

    // Same batch within a replica (keyed by dp rank), different across.
    const int dp_rank = comm.rank() / cfg.tp;
    std::vector<std::int32_t> tokens(static_cast<std::size_t>(mc.seq));
    std::vector<std::int32_t> targets(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = static_cast<std::int32_t>((dp_rank * 5 + i) % 31);
      targets[i] = static_cast<std::int32_t>((tokens[i] + 1) % 31);
    }
    float last = 0, first = 0;
    for (int s = 0; s < 10; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (s == 0) first = st.global_loss;
      last = st.global_loss;
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(m);
      losses = {first, last};
    }
    // Tensor slicing halves the per-GPU big-operator parameters.
    EXPECT_LT(engine.local_numel(), 12 * mc.layers * mc.hidden * mc.hidden +
                                        2 * mc.vocab * mc.hidden);
  });
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_TRUE(std::isfinite(losses[1]));
  EXPECT_LT(losses[1], losses[0]);
}

// The Fig. 6a "3D parallelism" row in miniature: a model whose replicated
// footprint exceeds one "GPU" trains under tp=4 because each GPU holds
// only 1/tp of the big operators — but unlike ZeRO-Infinity it required
// rewriting the model with tensor-parallel layers.
TEST(MegatronEngine, TensorSlicingExtendsModelScale) {
  TpGpt::Config mc = tiny_tp();
  mc.hidden = 64;
  mc.layers = 4;
  MegatronConfig cfg;
  cfg.tp = 4;
  cfg.gpu_arena_bytes = 1536 * kKiB;

  // Replicated (tp=1) footprint: ~263K params x 18 B ≈ 4.5 MiB > 1.5 MiB.
  EXPECT_THROW(
      run_ranks(4,
                [&](Communicator& comm) {
                  MegatronEngine::Grid grid =
                      MegatronEngine::make_grid(comm, 1);
                  TpGpt model(mc, grid.tp);
                  MegatronEngine engine(model, comm, std::move(grid),
                                        [&] {
                                          MegatronConfig c = cfg;
                                          c.tp = 1;
                                          return c;
                                        }());
                }),
      OutOfMemoryError);

  // tp=4 slices the blocks 4-ways: fits and trains.
  run_ranks(4, [&](Communicator& comm) {
    MegatronEngine::Grid grid = MegatronEngine::make_grid(comm, cfg.tp);
    TpGpt model(mc, grid.tp);
    MegatronEngine engine(model, comm, std::move(grid), cfg);
    std::vector<std::int32_t> tokens(static_cast<std::size_t>(mc.seq), 3);
    std::vector<std::int32_t> targets(tokens.size(), 4);
    const auto st = engine.train_step(tokens, targets);
    EXPECT_TRUE(std::isfinite(st.global_loss));
  });
}

// ---------------------------------------------------------------------------
// The ZeRO + model-parallelism hybrid (Table 1's "mp" column): the ZeRO
// engine runs over the data-parallel subgroup while the model itself is
// tensor-parallel — with no changes to either component. The trajectory is
// bit-identical to the Megatron baseline on the same grid, because ZeRO
// partitioning is exact.

TEST(HybridZeroMp, ZeroInfinityComposesWithTensorParallelism) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("zi_hybrid_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const TpGpt::Config mc = tiny_tp();
  constexpr int kTp = 2;
  constexpr int kWorld = 4;

  auto batch_for = [&](int dp_rank, std::vector<std::int32_t>& tokens,
                       std::vector<std::int32_t>& targets) {
    tokens.resize(static_cast<std::size_t>(mc.seq));
    targets.resize(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = static_cast<std::int32_t>((dp_rank * 5 + i) % 31);
      targets[i] = static_cast<std::int32_t>((tokens[i] + 1) % 31);
    }
  };

  // Baseline: MegatronEngine on a tp=2 x dp=2 grid.
  std::vector<float> baseline;
  run_ranks(kWorld, [&](Communicator& comm) {
    MegatronEngine::Grid grid = MegatronEngine::make_grid(comm, kTp);
    TpGpt model(mc, grid.tp);
    MegatronConfig cfg;
    cfg.tp = kTp;
    cfg.loss_scale.init_scale = 1024.0f;
    const int dp_rank = grid.dp.rank();
    MegatronEngine engine(model, comm, std::move(grid), cfg);
    std::vector<std::int32_t> tokens, targets;
    batch_for(dp_rank, tokens, targets);
    for (int s = 0; s < 4; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) baseline.push_back(st.global_loss);
    }
  });

  // Hybrid: the SAME tensor-parallel model under ZeRO-Infinity (stage 3,
  // CPU-resident shards) over the dp subgroup.
  std::vector<float> hybrid;
  AioEngine aio;
  run_ranks(kWorld, [&](Communicator& comm) {
    Communicator tp = comm.split(comm.rank() / kTp);
    Communicator dp = comm.split(comm.rank() % kTp);
    TpGpt model(mc, tp);
    EngineConfig cfg = preset_zero_infinity_cpu();
    cfg.activation_placement = Placement::kGpu;  // TpGpt has no ckpt wrappers
    cfg.nvme_dir = (dir / std::to_string(comm.rank() % kTp)).string();
    cfg.loss_scale.init_scale = 1024.0f;
    ZeroEngine engine(model, dp, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    batch_for(dp.rank(), tokens, targets);
    for (int s = 0; s < 4; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) hybrid.push_back(st.global_loss);
    }
  });

  ASSERT_EQ(baseline.size(), 4u);
  ASSERT_EQ(hybrid.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(hybrid[i], baseline[i]) << "step " << i;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace zi
