// Unit + property tests for software fp16 / bf16.
#include <gtest/gtest.h>

#include <cmath>

#include "common/half.hpp"

namespace zi {
namespace {

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(0.0f).bits(), 0x0000);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000);
  EXPECT_EQ(half(1.0f).bits(), 0x3C00);
  EXPECT_EQ(half(-2.0f).bits(), 0xC000);
  EXPECT_EQ(half(0.5f).bits(), 0x3800);
  EXPECT_EQ(half(65504.0f).bits(), 0x7BFF);  // max finite
  EXPECT_EQ(half(6.103515625e-5f).bits(), 0x0400);  // min normal 2^-14
}

TEST(Half, RoundtripExactValues) {
  // Every value with <= 10 mantissa bits in the half range is exact.
  for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 1024.0f, 0.25f, -0.125f, 3.5f,
                  1000.0f, -65504.0f}) {
    EXPECT_EQ(half(v).to_float(), v) << v;
  }
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(half(65520.0f).isinf());  // rounds up past max finite
  EXPECT_TRUE(half(1e10f).isinf());
  EXPECT_TRUE(half(-1e10f).isinf());
  EXPECT_LT(half(-1e10f).to_float(), 0.0f);
  // 65504 + epsilon below the rounding threshold stays finite.
  EXPECT_TRUE(half(65503.0f).isfinite());
}

TEST(Half, UnderflowAndSubnormals) {
  // Smallest positive subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(half(tiny).bits(), 0x0001);
  EXPECT_EQ(half(tiny).to_float(), tiny);
  // Below half of the smallest subnormal: rounds to zero.
  EXPECT_EQ(half(std::ldexp(1.0f, -26)).bits(), 0x0000);
  // Negative zero sign preserved on underflow.
  EXPECT_EQ(half(-std::ldexp(1.0f, -26)).bits(), 0x8000);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1+2^-10):
  // ties to even → 1.0 (mantissa even).
  EXPECT_EQ(half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3C00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even →
  // 1 + 2^-9 (mantissa 0b10).
  EXPECT_EQ(half(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(), 0x3C02);
  // Slightly above the halfway point rounds up.
  EXPECT_EQ(half(1.0f + std::ldexp(1.0f, -11) * 1.001f).bits(), 0x3C01);
}

TEST(Half, NanPropagation) {
  const half h(std::nanf(""));
  EXPECT_TRUE(h.isnan());
  EXPECT_FALSE(h.isfinite());
  EXPECT_FALSE(h.isinf());
  EXPECT_TRUE(std::isnan(h.to_float()));
}

TEST(Half, Arithmetic) {
  EXPECT_EQ((half(1.5f) + half(2.5f)).to_float(), 4.0f);
  EXPECT_EQ((half(3.0f) * half(2.0f)).to_float(), 6.0f);
  EXPECT_EQ((half(7.0f) - half(3.0f)).to_float(), 4.0f);
  EXPECT_EQ((half(8.0f) / half(2.0f)).to_float(), 4.0f);
  EXPECT_EQ((-half(5.0f)).to_float(), -5.0f);
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_GE(half(2.0f), half(2.0f));
}

// Property: decode(encode(decode(bits))) is the identity on all 65536 bit
// patterns (finite and special values alike, modulo NaN payload squashing).
TEST(HalfProperty, BitExactRoundtripAllPatterns) {
  for (std::uint32_t b = 0; b <= 0xFFFF; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const half h = half::from_bits(bits);
    const float f = h.to_float();
    const half h2(f);
    if (h.isnan()) {
      EXPECT_TRUE(h2.isnan()) << "bits=" << b;
    } else {
      EXPECT_EQ(h2.bits(), bits) << "bits=" << b;
    }
  }
}

// Property: conversion error is bounded by half an ulp across the normal
// range (relative error <= 2^-11).
TEST(HalfProperty, RelativeErrorBound) {
  for (int i = 0; i < 20000; ++i) {
    const float v = std::ldexp(1.0f + (i % 1000) / 1000.0f, (i % 29) - 14);
    const float back = half(v).to_float();
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * (1.0f / 2048.0f) + 1e-20f)
        << v;
  }
}

TEST(Bf16, Basics) {
  EXPECT_EQ(bfloat16(1.0f).to_float(), 1.0f);
  EXPECT_EQ(bfloat16(-2.0f).to_float(), -2.0f);
  // bf16 has 7 mantissa bits: 1 + 2^-7 is representable, 1 + 2^-8 ties to
  // even (1.0).
  EXPECT_EQ(bfloat16(1.0f + std::ldexp(1.0f, -7)).to_float(),
            1.0f + std::ldexp(1.0f, -7));
  EXPECT_EQ(bfloat16(1.0f + std::ldexp(1.0f, -8)).to_float(), 1.0f);
  // Full fp32 exponent range survives.
  EXPECT_EQ(bfloat16(1e30f).to_float(), bfloat16(1e30f).to_float());
  EXPECT_NEAR(bfloat16(1e30f).to_float(), 1e30f, 1e28f);
}

}  // namespace
}  // namespace zi
