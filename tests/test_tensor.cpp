#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/cast.hpp"
#include "tensor/tensor.hpp"

namespace zi {
namespace {

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4}, DType::kF32);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.ndim(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.nbytes(), 24u * 4u);
  EXPECT_EQ(t.to_string(), "f32[2, 3, 4]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({8}, DType::kF32);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(t.get(i), 0.0f);
}

TEST(Tensor, FillGetSet) {
  Tensor t({4}, DType::kF32);
  t.fill(3.5f);
  EXPECT_EQ(t.get(2), 3.5f);
  t.set(2, -1.0f);
  EXPECT_EQ(t.get(2), -1.0f);
  EXPECT_EQ(t.get(3), 3.5f);
}

TEST(Tensor, HalfStorage) {
  Tensor t({4}, DType::kF16);
  EXPECT_EQ(t.nbytes(), 8u);
  t.set(0, 1.5f);
  EXPECT_EQ(t.get(0), 1.5f);
  // fp16 rounding is visible through set/get.
  t.set(1, 1.0f + 1e-5f);
  EXPECT_EQ(t.get(1), 1.0f);
  half* p = t.data<half>();
  EXPECT_EQ(p[0].bits(), half(1.5f).bits());
}

TEST(Tensor, DtypeMismatchThrows) {
  Tensor t({4}, DType::kF16);
  EXPECT_THROW(t.data<float>(), Error);
}

TEST(Tensor, CloneIsDeep) {
  Tensor a({4}, DType::kF32);
  a.fill(1.0f);
  Tensor b = a.clone();
  b.set(0, 9.0f);
  EXPECT_EQ(a.get(0), 1.0f);
  EXPECT_EQ(b.get(0), 9.0f);
}

TEST(Tensor, CopyFromChecksShape) {
  Tensor a({4}, DType::kF32);
  Tensor b({5}, DType::kF32);
  EXPECT_THROW(a.copy_from(b), Error);
  Tensor c({4}, DType::kF16);
  EXPECT_THROW(a.copy_from(c), Error);
}

TEST(Tensor, ViewSharesMemory) {
  std::vector<std::byte> buf(16 * sizeof(float));
  Tensor v = Tensor::view({4, 4}, DType::kF32, buf.data());
  v.set(5, 7.0f);
  EXPECT_EQ(reinterpret_cast<float*>(buf.data())[5], 7.0f);
}

TEST(Tensor, OutOfRangeAccessThrows) {
  Tensor t({4}, DType::kF32);
  EXPECT_THROW(t.get(4), Error);
  EXPECT_THROW(t.set(-1, 0.0f), Error);
}

TEST(Cast, RoundtripF32F16F32) {
  Tensor a({5}, DType::kF32);
  const float vals[] = {0.0f, 1.0f, -2.5f, 1024.0f, 0.125f};
  for (int i = 0; i < 5; ++i) a.set(i, vals[i]);
  Tensor h = cast(a, DType::kF16);
  Tensor back = cast(h, DType::kF32);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(back.get(i), vals[i]);
}

TEST(Cast, RoundingVisible) {
  Tensor a({1}, DType::kF32);
  a.set(0, 2049.0f);  // fp16 ulp at 2048 is 2 → rounds to even (2048)
  Tensor h = cast(a, DType::kF16);
  EXPECT_EQ(h.get(0), 2048.0f);
}

TEST(Cast, SameDtypeIsCopy) {
  Tensor a({3}, DType::kF32);
  a.fill(4.0f);
  Tensor b = cast(a, DType::kF32);
  b.set(0, 1.0f);
  EXPECT_EQ(a.get(0), 4.0f);
}

TEST(Cast, SpanConversions) {
  std::vector<float> f = {1.0f, -3.0f, 0.5f};
  std::vector<half> h(3);
  cast_f32_to_f16(f, h);
  std::vector<float> back(3);
  cast_f16_to_f32(h, back);
  EXPECT_EQ(back, f);
}

}  // namespace
}  // namespace zi
