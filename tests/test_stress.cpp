// Randomized stress / property tests of the substrates: the arena
// allocator under adversarial alloc/free patterns, the async I/O engine
// under randomized concurrent traffic, and the engine exactness matrix
// swept over (stage × world) with parameterized gtest.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "aio/aio_engine.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "mem/arena.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Arena fuzz: random alloc/free sequences must preserve the allocator's
// invariants — accounting consistency, non-overlap, full coalescing on
// drain.

class ArenaFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaFuzzTest, RandomAllocFreePreservesInvariants) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed, 0);
  DeviceArena arena("fuzz", 1 * kMiB, DeviceArena::Mode::kVirtual);
  std::vector<ArenaBlock> live;
  std::uint64_t expected_used = 0;

  for (int op = 0; op < 2000; ++op) {
    const bool do_alloc = live.empty() || rng.next_below(100) < 60;
    if (do_alloc) {
      const std::uint64_t bytes = 1 + rng.next_below(32 * kKiB);
      const std::uint64_t align = 1ull << rng.next_below(9);  // 1..256
      try {
        ArenaBlock b = arena.allocate(bytes, align);
        EXPECT_EQ(b.offset() % align, 0u);
        EXPECT_GE(b.size(), bytes);
        // Non-overlap with every live block.
        for (const ArenaBlock& o : live) {
          const bool disjoint = b.offset() + b.size() <= o.offset() ||
                                o.offset() + o.size() <= b.offset();
          ASSERT_TRUE(disjoint) << "overlap at op " << op;
        }
        expected_used += b.size();
        live.push_back(std::move(b));
      } catch (const OutOfMemoryError&) {
        // Legal under pressure; accounting must still hold below.
      }
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      expected_used -= live[idx].size();
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(arena.used(), expected_used) << "op " << op;
  }
  live.clear();
  EXPECT_EQ(arena.used(), 0u);
  // Full coalescing: one span covering everything.
  EXPECT_EQ(arena.largest_free_block(), arena.capacity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// AIO fuzz: random-size writes at random offsets from multiple logical
// streams; every region must read back exactly what was last written.

TEST(AioFuzz, RandomOffsetsAndSizesReadBackExactly) {
  const fs::path dir =
      fs::temp_directory_path() / ("zi_aiofuzz_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  AioConfig cfg;
  cfg.num_workers = 6;
  cfg.block_bytes = 4096;  // force splitting
  AioEngine engine(cfg);
  AioFile* f = engine.open(dir / "fuzz.bin");

  constexpr std::uint64_t kFileSize = 1 << 20;
  std::vector<std::byte> mirror(kFileSize, std::byte{0});
  f->resize(kFileSize);
  {
    std::vector<std::byte> zeros(kFileSize, std::byte{0});
    engine.write(f, 0, zeros);
  }

  Rng rng(42, 7);
  std::vector<std::vector<std::byte>> payloads;
  std::vector<AioStatus> statuses;
  for (int round = 0; round < 20; ++round) {
    payloads.clear();
    statuses.clear();
    // A burst of non-overlapping async writes.
    std::uint64_t cursor = rng.next_below(kFileSize / 4);
    while (cursor < kFileSize) {
      const std::uint64_t len =
          std::min<std::uint64_t>(1 + rng.next_below(30000), kFileSize - cursor);
      payloads.emplace_back(len);
      for (auto& b : payloads.back()) {
        b = static_cast<std::byte>(rng.next_u64() & 0xFF);
      }
      std::copy(payloads.back().begin(), payloads.back().end(),
                mirror.begin() + static_cast<std::ptrdiff_t>(cursor));
      statuses.push_back(engine.submit_write(f, cursor, payloads.back()));
      cursor += len + rng.next_below(50000);
    }
    for (auto& s : statuses) s.wait();
  }
  std::vector<std::byte> back(kFileSize);
  engine.read(f, 0, back);
  ASSERT_EQ(back, mirror);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Engine exactness swept over (stage × world) with TEST_P.

struct MatrixCase {
  int world;
  ZeroStage stage;
};

class EngineMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EngineMatrixTest, MatchesDdpTrajectory) {
  const MatrixCase c = GetParam();
  const fs::path dir = fs::temp_directory_path() /
                       ("zi_matrix_" + std::to_string(::getpid()) + "_" +
                        std::to_string(c.world) + "_" +
                        std::to_string(static_cast<int>(c.stage)));
  fs::create_directories(dir);

  GptConfig mc;
  mc.vocab = 32;
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 1;
  mc.heads = 2;

  auto run = [&](ZeroStage stage, const fs::path& d) {
    EngineConfig cfg;
    cfg.stage = stage;
    if (stage == ZeroStage::kStage3) {
      cfg.param_placement = Placement::kNvme;
      cfg.optimizer_placement = Placement::kCpu;
      cfg.grad_placement = Placement::kCpu;
    }
    cfg.nvme_dir = d.string();
    std::vector<float> losses;
    AioEngine aio;
    run_ranks(c.world, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens(static_cast<std::size_t>(mc.seq));
      std::vector<std::int32_t> targets(tokens.size());
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        tokens[i] = static_cast<std::int32_t>((comm.rank() * 5 + i) % 31);
        targets[i] = static_cast<std::int32_t>((tokens[i] + 2) % 31);
      }
      for (int s = 0; s < 3; ++s) {
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
      }
    });
    return losses;
  };

  const auto reference = run(ZeroStage::kNone, dir / "ref");
  const auto candidate = run(c.stage, dir / "cand");
  ASSERT_EQ(reference.size(), candidate.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(candidate[i], reference[i]) << i;
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    StageWorld, EngineMatrixTest,
    ::testing::Values(MatrixCase{1, ZeroStage::kStage1},
                      MatrixCase{1, ZeroStage::kStage3},
                      MatrixCase{2, ZeroStage::kStage1},
                      MatrixCase{2, ZeroStage::kStage2},
                      MatrixCase{3, ZeroStage::kStage3},
                      MatrixCase{4, ZeroStage::kStage2},
                      MatrixCase{5, ZeroStage::kStage3}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return "world" + std::to_string(info.param.world) + "_stage" +
             std::to_string(static_cast<int>(info.param.stage));
    });

// ---------------------------------------------------------------------------
// Pinned-pool contention: many threads hammering a tiny pool never deadlock
// and never observe an over-subscribed buffer.

TEST(PinnedPoolStress, ConcurrentLeasesNeverOversubscribe) {
  PinnedBufferPool pool(1024, 3);
  std::atomic<int> in_use{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        PinnedLease lease = pool.acquire();
        const int now = in_use.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        lease.data()[0] = std::byte{1};
        in_use.fetch_sub(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(max_seen.load(), 3);
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pool.stats().total_acquires, 1600u);
}

}  // namespace
}  // namespace zi
