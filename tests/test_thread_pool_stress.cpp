// Multi-producer stress for ThreadPool — the suite the TSan CI job leans
// on. submit()/enqueue()/wait_idle()/tasks_completed() are hammered from
// many threads at once so any unguarded state in the pool (queue, active
// count, completion counter, shutdown flag) shows up as a data race under
// -fsanitize=thread and as a lost update here.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <thread>
#include <vector>

namespace zi {
namespace {

TEST(ThreadPoolStressTest, ManyProducersEnqueue) {
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kTasksPerProducer = 500;

  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum] {
      for (std::size_t i = 0; i < kTasksPerProducer; ++i) {
        pool.enqueue([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait_idle();

  EXPECT_EQ(sum.load(), kProducers * kTasksPerProducer);
  EXPECT_EQ(pool.tasks_completed(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, SubmitFuturesFromManyProducers) {
  constexpr std::size_t kProducers = 6;
  constexpr std::size_t kTasksPerProducer = 200;

  ThreadPool pool(3);
  std::vector<std::vector<std::future<std::size_t>>> futures(kProducers);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &futures, p] {
      futures[p].reserve(kTasksPerProducer);
      for (std::size_t i = 0; i < kTasksPerProducer; ++i) {
        futures[p].push_back(pool.submit([p, i] { return p * 1000 + i; }));
      }
    });
  }
  for (auto& t : producers) t.join();

  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < kTasksPerProducer; ++i) {
      EXPECT_EQ(futures[p][i].get(), p * 1000 + i);
    }
  }
}

TEST(ThreadPoolStressTest, ConcurrentWaitIdleObservers) {
  constexpr std::size_t kRounds = 20;
  constexpr std::size_t kTasksPerRound = 64;

  ThreadPool pool(4);
  std::atomic<std::uint64_t> executed{0};
  std::atomic<bool> done{false};

  // Observers poll wait_idle() and the completion counter while producers
  // are still feeding the queue — wait_idle() must never return with a
  // non-empty queue visible to the same thread's later enqueue.
  std::vector<std::thread> observers;
  for (int o = 0; o < 3; ++o) {
    observers.emplace_back([&pool, &done] {
      while (!done.load(std::memory_order_acquire)) {
        pool.wait_idle();
        (void)pool.tasks_completed();
        std::this_thread::yield();
      }
    });
  }

  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kTasksPerRound; ++i) {
      pool.enqueue(
          [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(executed.load(), (r + 1) * kTasksPerRound);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : observers) t.join();

  EXPECT_EQ(pool.tasks_completed(), kRounds * kTasksPerRound);
}

TEST(ThreadPoolStressTest, TasksEnqueueMoreTasks) {
  // Workers feeding the pool they run on: exercises enqueue-from-worker
  // while external threads race wait_idle(). Fan-out depth 3: 1 + 8 + 64
  // + 512 tasks.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> executed{0};

  std::function<void(int)> fan_out = [&](int depth) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    for (int i = 0; i < 8; ++i) {
      pool.enqueue([&fan_out, depth] { fan_out(depth - 1); });
    }
  };
  pool.enqueue([&fan_out] { fan_out(3); });

  // wait_idle() observes "queue empty AND no active workers", which is only
  // stable once the whole tree has run: an active worker that will enqueue
  // children is still counted in active_.
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 1u + 8u + 64u + 512u);
  EXPECT_EQ(pool.tasks_completed(), 585u);
}

TEST(ThreadPoolStressTest, ManyPoolsConstructedAndDestroyed) {
  // Construction/destruction races: each pool is built, loaded, and torn
  // down while its last tasks may still be draining through ~ThreadPool.
  for (int round = 0; round < 16; ++round) {
    ThreadPool pool(2 + round % 3);
    std::atomic<int> n{0};
    for (int i = 0; i < 100; ++i) {
      pool.enqueue([&n] { n.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    ASSERT_EQ(n.load(), 100);
  }
}

}  // namespace
}  // namespace zi
