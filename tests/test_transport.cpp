// Transport conformance: the same Communicator protocol over both backends.
//
// Every behavioral contract of the comm layer — collective values and
// deterministic fp32 rank-order accumulation, p2p caps and tag delivery,
// split() subgroups, poison/timeout abort semantics, fault-site behavior,
// result payloads — is asserted twice via TEST_P, once per TransportKind.
// The in-process backend is the reference implementation; the out-of-process
// backend (forked rank subprocesses, Unix-socket control plane, shared-memory
// data plane) must be observationally identical, including failure blame and
// bit-exact reduction results.
//
// Rank bodies THROW on mismatch instead of using EXPECT_*: under the proc
// backend the body runs in a forked child whose gtest state never reaches
// the parent — a thrown error, by contrast, travels through the WorldReport
// on both backends.
//
// The headline scenario at the bottom upgrades test_elastic's injected-crash
// story to a *real* `kill -9`: a rank process SIGKILLs itself mid-step
// (proc_kill fault site), the supervisor detects the death via socket EOF,
// restarts the survivors from the newest intact checkpoint, and the resumed
// loss trajectory is bit-identical to an in-process control run resumed from
// a copy of the same checkpoint.
//
// Satellite regression tests ride along: WorldOptions::from_env must reject
// suffixed/garbage numerics ("ZI_P2P_CAP_BYTES=4gb" used to silently parse
// as 0), and a failed checkpoint write must not leak "<path>.tmp".
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.hpp"
#include "core/ckpt_io.hpp"
#include "core/elastic.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/tokenizer.hpp"
#include "model/gpt.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

/// Rank-body assertion that survives the process boundary: throw, don't
/// EXPECT (a child's gtest failure state is lost at _Exit).
#define RANK_REQUIRE(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw std::runtime_error(std::string("rank assertion failed: ") +     \
                               #cond + " at line " +                        \
                               std::to_string(__LINE__));                   \
    }                                                                       \
  } while (0)

/// Run a world on a helper thread and fail hard on a hang — "an abort never
/// wedges the supervisor" is the invariant every failure test guards.
WorldReport run_world_guarded(int num_ranks, const WorldOptions& options,
                              std::function<void(Communicator&)> fn,
                              int timeout_s = 120) {
  auto prom = std::make_shared<std::promise<WorldReport>>();
  std::future<WorldReport> fut = prom->get_future();
  std::thread([prom, num_ranks, options, fn = std::move(fn)] {
    try {
      prom->set_value(run_world(num_ranks, options, fn));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  }).detach();
  if (fut.wait_for(std::chrono::seconds(timeout_s)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "run_world did not return within " << timeout_s
                  << " s — the abort path hung";
    std::abort();
  }
  return fut.get();
}

class TransportConformance
    : public ::testing::TestWithParam<TransportKind> {
 protected:
  void SetUp() override {
    FaultInjector::instance().clear();
    if (kTsan && GetParam() == TransportKind::kProc) {
      GTEST_SKIP() << "fork-based transport is not TSan-instrumentable; "
                      "the proc lane runs unsanitized in CI";
    }
  }
  void TearDown() override { FaultInjector::instance().clear(); }

  WorldOptions opts(double timeout_ms = 0.0) const {
    WorldOptions o;
    o.transport = GetParam();
    o.timeout_ms = timeout_ms;
    return o;
  }
};

std::string param_name(
    const ::testing::TestParamInfo<TransportKind>& info) {
  return info.param == TransportKind::kProc ? "proc" : "inproc";
}

// ---------------------------------------------------------------------------
// Collectives and data plane.

TEST_P(TransportConformance, CollectivesProduceExactValues) {
  const WorldReport wr =
      run_world_guarded(4, opts(), [](Communicator& comm) {
        const int n = comm.size();
        const int r = comm.rank();
        RANK_REQUIRE(n == 4);

        std::vector<float> v{r + 0.25f, r * 2.0f};
        comm.allreduce_sum(std::span<float>(v));
        float s0 = 0.0f, s1 = 0.0f;
        for (int i = 0; i < n; ++i) {
          s0 += i + 0.25f;
          s1 += i * 2.0f;
        }
        RANK_REQUIRE(v[0] == s0 && v[1] == s1);

        std::vector<int> b(3, r == 1 ? 7 : 0);
        comm.broadcast(std::span<int>(b), 1);
        RANK_REQUIRE(b[0] == 7 && b[1] == 7 && b[2] == 7);

        const std::vector<int> send{r * 10, r * 10 + 1};
        std::vector<int> recv(2 * static_cast<std::size_t>(n));
        comm.allgather(std::span<const int>(send), std::span<int>(recv));
        for (int i = 0; i < n; ++i) {
          RANK_REQUIRE(recv[2 * static_cast<std::size_t>(i)] == i * 10);
          RANK_REQUIRE(recv[2 * static_cast<std::size_t>(i) + 1] ==
                       i * 10 + 1);
        }

        std::vector<float> contrib(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
          contrib[static_cast<std::size_t>(i)] = r + i * 0.5f;
        }
        std::vector<float> chunk(1);
        comm.reduce_scatter_sum(std::span<const float>(contrib),
                                std::span<float>(chunk));
        float expect = 0.0f;
        for (int i = 0; i < n; ++i) expect += i + r * 0.5f;
        RANK_REQUIRE(chunk[0] == expect);

        RANK_REQUIRE(comm.allreduce_max(r * 1.5) == (n - 1) * 1.5);
        RANK_REQUIRE(comm.allreduce_sum_scalar(1.0) ==
                     static_cast<double>(n));
        RANK_REQUIRE(comm.allreduce_or(r == 2));
        RANK_REQUIRE(!comm.allreduce_or(false));

        std::vector<int> gsend{r + 100};
        std::vector<int> grecv(static_cast<std::size_t>(n));
        comm.gather(std::span<const int>(gsend), std::span<int>(grecv), 2);
        if (r == 2) {
          for (int i = 0; i < n; ++i) {
            RANK_REQUIRE(grecv[static_cast<std::size_t>(i)] == i + 100);
          }
        }
        comm.barrier();
      });
  EXPECT_TRUE(wr.ok) << (wr.errors.empty() ? "?" : wr.errors.front());
  EXPECT_TRUE(wr.failed_ranks.empty());
}

TEST_P(TransportConformance, P2pRingDeliversTaggedPayloads) {
  const WorldReport wr =
      run_world_guarded(3, opts(), [](Communicator& comm) {
        const int n = comm.size();
        const int r = comm.rank();
        const int to = (r + 1) % n;
        const int from = (r + n - 1) % n;
        std::vector<std::int32_t> out(5, r * 11);
        comm.send(std::span<const std::int32_t>(out), to, /*tag=*/5);
        std::vector<std::int32_t> in(5, -1);
        comm.recv(std::span<std::int32_t>(in), from, /*tag=*/5);
        for (const std::int32_t x : in) RANK_REQUIRE(x == from * 11);
      });
  EXPECT_TRUE(wr.ok) << (wr.errors.empty() ? "?" : wr.errors.front());
}

TEST_P(TransportConformance, CappedSendBlocksUntilReceiverDrains) {
  WorldOptions o = opts(30000.0);
  o.p2p_capacity_bytes = 64;  // one 64-byte message fills the channel
  const WorldReport wr = run_world_guarded(2, o, [](Communicator& comm) {
    constexpr std::size_t kFloats = 16;  // 64 bytes
    if (comm.rank() == 0) {
      std::vector<float> m1(kFloats, 1.0f), m2(kFloats, 2.0f);
      comm.send(std::span<const float>(m1), 1);
      // The queue already holds 64 bytes, so this send must block until
      // the (deliberately slow) receiver drains the first message.
      comm.send(std::span<const float>(m2), 1);
      RANK_REQUIRE(comm.traffic().p2p_send_blocks.load() >= 1);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      std::vector<float> in(kFloats);
      comm.recv(std::span<float>(in), 0);
      RANK_REQUIRE(in[0] == 1.0f);
      comm.recv(std::span<float>(in), 0);
      RANK_REQUIRE(in[0] == 2.0f);
    }
  });
  EXPECT_TRUE(wr.ok) << (wr.errors.empty() ? "?" : wr.errors.front());
}

TEST_P(TransportConformance, ByteCapStillDeliversOversizedMessage) {
  WorldOptions o = opts(30000.0);
  o.p2p_capacity_bytes = 16;  // smaller than the single message below
  const WorldReport wr = run_world_guarded(2, o, [](Communicator& comm) {
    std::vector<float> buf(16);  // 64 bytes > 16-byte cap, queue empty
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<float>(i);
      }
      comm.send(std::span<const float>(buf), 1);
      RANK_REQUIRE(comm.traffic().p2p_send_blocks.load() == 0);
    } else {
      comm.recv(std::span<float>(buf), 0);
      RANK_REQUIRE(buf[15] == 15.0f);
    }
  });
  EXPECT_TRUE(wr.ok) << (wr.errors.empty() ? "?" : wr.errors.front());
}

TEST_P(TransportConformance, SplitSubgroupsReduceIndependently) {
  const WorldReport wr =
      run_world_guarded(4, opts(), [](Communicator& comm) {
        const int r = comm.rank();
        Communicator sub = comm.split(r % 2);
        RANK_REQUIRE(sub.size() == 2);
        RANK_REQUIRE(sub.global_rank() == r);
        RANK_REQUIRE(sub.rank() == r / 2);  // ascending world order
        std::vector<float> v{static_cast<float>(r)};
        sub.allreduce_sum(std::span<float>(v));
        // color 0 holds world ranks {0,2}, color 1 holds {1,3}
        RANK_REQUIRE(v[0] == (r % 2 == 0 ? 2.0f : 4.0f));
        sub.barrier();
        comm.barrier();
      });
  EXPECT_TRUE(wr.ok) << (wr.errors.empty() ? "?" : wr.errors.front());
}

TEST_P(TransportConformance, SetResultPayloadsReachTheSupervisor) {
  const WorldReport wr =
      run_world_guarded(3, opts(), [](Communicator& comm) {
        comm.set_result("payload-" + std::to_string(comm.rank()));
      });
  ASSERT_TRUE(wr.ok);
  ASSERT_EQ(wr.rank_payloads.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(wr.rank_payloads[static_cast<std::size_t>(r)],
              "payload-" + std::to_string(r));
  }
}

// ---------------------------------------------------------------------------
// Failure semantics.

TEST_P(TransportConformance, RankExceptionPoisonsWorldAndBlamesCulprit) {
  const WorldReport wr =
      run_world_guarded(4, opts(30000.0), [](Communicator& comm) {
        comm.barrier();
        if (comm.rank() == 2) {
          throw std::runtime_error("boom from rank 2");
        }
        for (;;) comm.barrier();  // unblocked only by the poison
      });
  EXPECT_FALSE(wr.ok);
  EXPECT_EQ(wr.kind, WorldFailKind::kException);
  EXPECT_EQ(wr.culprit_rank, 2);
  ASSERT_EQ(wr.primary_ranks.size(), 1u);
  EXPECT_EQ(wr.primary_ranks[0], 2);
  EXPECT_EQ(wr.failed_ranks.size(), 4u);  // three collateral aborts
  EXPECT_NE(wr.culprit_what.find("boom from rank 2"), std::string::npos)
      << wr.culprit_what;
  EXPECT_EQ(wr.detached, 0);
}

TEST_P(TransportConformance, BarrierTimeoutBlamesTheMissingRank) {
  const WorldReport wr =
      run_world_guarded(2, opts(800.0), [](Communicator& comm) {
        if (comm.rank() == 1) return;  // never arrives
        comm.barrier();
      });
  EXPECT_FALSE(wr.ok);
  EXPECT_EQ(wr.kind, WorldFailKind::kTimeout);
  EXPECT_EQ(wr.culprit_rank, 1);
  ASSERT_EQ(wr.failed_ranks.size(), 1u);
  EXPECT_EQ(wr.failed_ranks[0], 0);
  EXPECT_TRUE(wr.primary_ranks.empty());  // a pure timeout has no primary
  ASSERT_EQ(wr.errors.size(), 1u);
  EXPECT_NE(wr.errors[0].find("rank 1"), std::string::npos) << wr.errors[0];
}

TEST_P(TransportConformance, ReleasedBarrierWaiterOutlivesItsOldDeadline) {
  // Regression: the proc hub used to release barrier waiters without
  // clearing their parked state, so a compute phase longer than timeout_ms
  // *after* a successful barrier made the deadline sweep fire on the stale
  // park and send an unsolicited timeout frame — poisoning a healthy world
  // and desyncing the released rank's reply stream.
  const WorldReport wr =
      run_world_guarded(2, opts(400.0), [](Communicator& comm) {
        // Stagger arrivals so rank 0 genuinely parks (deadline armed).
        if (comm.rank() == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(150));
        }
        comm.barrier();
        // Compute phase longer than the timeout: the old deadline expires
        // while nobody is waiting on anything.
        std::this_thread::sleep_for(std::chrono::milliseconds(700));
        comm.barrier();
      });
  EXPECT_TRUE(wr.ok) << (wr.errors.empty() ? "" : wr.errors[0]);
  EXPECT_TRUE(wr.failed_ranks.empty());
}

TEST_P(TransportConformance, ProcKillFaultSiteFiresPerBackend) {
  // proc_kill at rank 1's 4th collective entry: a real SIGKILL under the
  // proc backend, a degraded thrown crash in-process. Either way the world
  // must blame rank 1 as the primary and unblock everyone else.
  FaultInjector::instance().configure(
      "seed=5;proc_kill:error,rank=1,after=3,count=1");
  const WorldReport wr =
      run_world_guarded(3, opts(30000.0), [](Communicator& comm) {
        for (int i = 0; i < 10; ++i) comm.barrier();
      });
  EXPECT_FALSE(wr.ok);
  EXPECT_EQ(wr.kind, WorldFailKind::kException);
  EXPECT_EQ(wr.culprit_rank, 1);
  ASSERT_EQ(wr.primary_ranks.size(), 1u);
  EXPECT_EQ(wr.primary_ranks[0], 1);
  const std::string expect_substr = GetParam() == TransportKind::kProc
                                        ? "killed by signal"
                                        : "degraded to a thrown crash";
  EXPECT_NE(wr.culprit_what.find(expect_substr), std::string::npos)
      << wr.culprit_what;
}

TEST_P(TransportConformance, ProcStallBlameFallsOnFrozenRank) {
  // proc_stall at rank 1's 3rd collective entry: a real SIGSTOP/SIGCONT
  // full-process freeze under the proc backend (heartbeat thread included),
  // the degraded heartbeat-free rank_stall sleep in-process. The freeze
  // (1.5 s) outlives the 800 ms deadline, so rank 0's timed wait expires
  // and the heartbeat-age blame must land on the frozen rank — not on the
  // reporter, and not as a generic world error.
  FaultInjector::instance().configure(
      "seed=13;proc_stall:delay,rank=1,after=2,count=1,delay_us=1500000");
  const WorldReport wr =
      run_world_guarded(2, opts(800.0), [](Communicator& comm) {
        for (int i = 0; i < 6; ++i) comm.barrier();
      });
  EXPECT_FALSE(wr.ok);
  EXPECT_EQ(wr.kind, WorldFailKind::kTimeout);
  EXPECT_EQ(wr.culprit_rank, 1);
  EXPECT_TRUE(wr.primary_ranks.empty());  // a stall is nobody's exception
  EXPECT_EQ(wr.detached, 0);  // the freeze is bounded: everyone unwinds
  EXPECT_NE(wr.culprit_what.find("waiting for rank 1"), std::string::npos)
      << wr.culprit_what;
  EXPECT_NE(wr.culprit_what.find("heartbeat age"), std::string::npos)
      << wr.culprit_what;
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(TransportKind::kInproc,
                                           TransportKind::kProc),
                         param_name);

// ---------------------------------------------------------------------------
// Cross-backend determinism: not just "both correct" — bit-identical.

TEST(TransportCrossBackend, ReductionsAreBitIdenticalAcrossBackends) {
  if (kTsan) GTEST_SKIP() << "proc backend unsupported under TSan";
  const auto run = [](TransportKind kind) {
    WorldOptions o;
    o.transport = kind;
    const WorldReport wr =
        run_world_guarded(4, o, [](Communicator& comm) {
          // Values chosen so fp32 accumulation order matters: summing in a
          // different rank order would change the result bits.
          std::vector<float> v(257);
          for (std::size_t i = 0; i < v.size(); ++i) {
            v[i] = 0.1f * (comm.rank() + 1) + 0.001f * static_cast<float>(i);
          }
          comm.allreduce_sum(std::span<float>(v));
          const double s =
              comm.allreduce_sum_scalar(0.3 * (comm.rank() + 1));
          std::string blob(reinterpret_cast<const char*>(v.data()),
                           v.size() * sizeof(float));
          blob.append(reinterpret_cast<const char*>(&s), sizeof(s));
          comm.set_result(std::move(blob));
        });
    EXPECT_TRUE(wr.ok) << (wr.errors.empty() ? "?" : wr.errors.front());
    return wr.rank_payloads;
  };
  const std::vector<std::string> inproc = run(TransportKind::kInproc);
  const std::vector<std::string> proc = run(TransportKind::kProc);
  ASSERT_EQ(inproc.size(), proc.size());
  for (std::size_t r = 0; r < inproc.size(); ++r) {
    EXPECT_EQ(inproc[r], proc[r]) << "rank " << r << " result bits diverged";
  }
}

TEST(TransportCrossBackend, StallBlameIsByteIdenticalAcrossBackends) {
  // Same freeze, both backends: the timeout blame must not just name the
  // same culprit — the recorded first-failure text must match byte for byte
  // up to the live heartbeat-age suffix (a measured wall time, the one part
  // that legitimately differs run to run). A 2-rank world pins the
  // reporter: only rank 0 is left waiting, so op, reporter rank, timeout,
  // epoch, and blamed rank are all deterministic.
  if (kTsan) GTEST_SKIP() << "proc backend unsupported under TSan";
  const auto stall_blame = [](TransportKind kind) {
    FaultInjector::instance().clear();
    FaultInjector::instance().configure(
        "seed=13;proc_stall:delay,rank=1,after=2,count=1,delay_us=1500000");
    WorldOptions o;
    o.transport = kind;
    o.timeout_ms = 800.0;
    const WorldReport wr = run_world_guarded(2, o, [](Communicator& comm) {
      for (int i = 0; i < 6; ++i) comm.barrier();
    });
    FaultInjector::instance().clear();
    EXPECT_FALSE(wr.ok);
    EXPECT_EQ(wr.kind, WorldFailKind::kTimeout);
    EXPECT_EQ(wr.culprit_rank, 1);
    // "... waiting for rank 1 (heartbeat age 812 ms)" — strip the age.
    const std::size_t cut = wr.culprit_what.find(" (heartbeat age");
    EXPECT_NE(cut, std::string::npos) << wr.culprit_what;
    return wr.culprit_what.substr(0, cut);
  };
  const std::string inproc = stall_blame(TransportKind::kInproc);
  const std::string proc = stall_blame(TransportKind::kProc);
  EXPECT_FALSE(inproc.empty());
  EXPECT_EQ(inproc, proc) << "stall blame diverged across backends";
}

// ---------------------------------------------------------------------------
// Satellite: WorldOptions::from_env fails fast on malformed numerics.

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {}
  ~EnvGuard() { ::unsetenv(name_); }
  void set(const char* value) { ::setenv(name_, value, 1); }

 private:
  const char* name_;
};

TEST(WorldOptionsFromEnv, RejectsSuffixedByteCount) {
  EnvGuard guard("ZI_P2P_CAP_BYTES");
  guard.set("4gb");  // used to strtoull-parse as 4... or 0, silently
  try {
    (void)WorldOptions::from_env();
    FAIL() << "from_env accepted ZI_P2P_CAP_BYTES=4gb";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("ZI_P2P_CAP_BYTES"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("4gb"), std::string::npos)
        << e.what();
  }
}

TEST(WorldOptionsFromEnv, RejectsGarbageFloat) {
  EnvGuard guard("ZI_COMM_TIMEOUT_MS");
  guard.set("fast");
  EXPECT_THROW((void)WorldOptions::from_env(), Error);
  guard.set("12.5ms");  // trailing unit must not silently truncate
  EXPECT_THROW((void)WorldOptions::from_env(), Error);
  // from_chars parses these as valid doubles; a NaN timeout makes every
  // deadline comparison false, so non-finite values must be rejected too.
  guard.set("nan");
  EXPECT_THROW((void)WorldOptions::from_env(), Error);
  guard.set("inf");
  EXPECT_THROW((void)WorldOptions::from_env(), Error);
}

TEST(WorldOptionsFromEnv, RejectsUnknownTransport) {
  EnvGuard guard("ZI_TRANSPORT");
  guard.set("tcp");
  try {
    (void)WorldOptions::from_env();
    FAIL() << "from_env accepted ZI_TRANSPORT=tcp";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("tcp"), std::string::npos);
  }
}

TEST(WorldOptionsFromEnv, ParsesValidValues) {
  EnvGuard cap_bytes("ZI_P2P_CAP_BYTES");
  EnvGuard cap_msgs("ZI_P2P_CAP_MSGS");
  EnvGuard timeout("ZI_COMM_TIMEOUT_MS");
  EnvGuard transport("ZI_TRANSPORT");
  EnvGuard shm("ZI_PROC_SHM_MB");
  cap_bytes.set("4294967296");  // what "4gb" should have been
  cap_msgs.set("128");
  timeout.set("2500.5");
  transport.set("proc");
  shm.set("16");
  const WorldOptions o = WorldOptions::from_env();
  EXPECT_EQ(o.p2p_capacity_bytes, 4294967296ull);
  EXPECT_EQ(o.p2p_capacity_messages, 128u);
  EXPECT_EQ(o.timeout_ms, 2500.5);
  EXPECT_EQ(o.transport, TransportKind::kProc);
  EXPECT_EQ(o.proc_shm_mb, 16u);
}

// ---------------------------------------------------------------------------
// Satellite: a failed checkpoint write leaves no "<path>.tmp" litter.

TEST(CkptTmpHygiene, FailedPayloadWriteUnlinksTmp) {
  FaultInjector::instance().clear();
  const fs::path dir = fs::temp_directory_path() /
                       ("zi_ckpt_tmp_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "model.ckpt").string();
  std::vector<std::byte> blob(4096, std::byte{0x5a});

  // Every aio write fails: the engine exhausts retries and
  // write_checkpoint_file must throw — leaving neither <path> nor
  // <path>.tmp behind.
  FaultInjector::instance().configure("seed=9;aio_write:error,p=1");
  {
    AioEngine aio;
    EXPECT_THROW(write_checkpoint_file(aio, path, blob), std::exception);
  }
  FaultInjector::instance().clear();
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "leaked temp file";
  EXPECT_FALSE(fs::exists(ckpt_manifest_path(path)));

  // And a clean write still works in the same directory afterwards.
  {
    AioEngine aio;
    write_checkpoint_file(aio, path, blob);
  }
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_TRUE(fs::exists(ckpt_manifest_path(path)));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The headline: kill -9 a rank process mid-step, restart, resume
// bit-identically. Mirrors test_elastic's injected-crash scenario with a
// real process death under the proc backend.

struct KillNineSetup {
  GptConfig mc;
  TokenDataset data{std::vector<std::int32_t>(400, 1), 16};

  KillNineSetup() {
    ByteTokenizer tok;
    std::string corpus;
    for (int i = 0; i < 30; ++i) corpus += "the quick brown fox jumps. ";
    mc.vocab = tok.vocab_size();
    mc.seq = 16;
    mc.hidden = 32;
    mc.layers = 2;
    mc.heads = 4;
    data = TokenDataset(tok.encode(corpus), mc.seq);
  }

  TrainerConfig trainer_config(const fs::path& dir) const {
    TrainerConfig tc;
    tc.total_steps = 10;
    tc.batch_per_rank = 2;
    tc.micro_batches = 1;
    tc.checkpoint_every = 3;  // checkpoints at steps 3, 6, 9
    tc.checkpoint_keep = 3;
    tc.checkpoint_path = (dir / "run.ckpt").string();
    tc.schedule.base_lr = 5e-3f;
    tc.schedule.warmup_steps = 2;
    tc.schedule.total_steps = 10;
    return tc;
  }

  EngineConfig engine_config(const fs::path& dir) const {
    EngineConfig cfg = preset_zero_infinity_nvme();
    cfg.nvme_dir = (dir / "swap").string();
    cfg.loss_scale.init_scale = 1024.0f;
    return cfg;
  }

  /// A clean in-process run mirroring the elastic attempt body op-for-op,
  /// used both to calibrate the kill ordinal and as the bit-exact control.
  std::pair<std::vector<float>, std::int64_t> run_inproc(const fs::path& dir,
                                                         int ranks,
                                                         AioEngine& aio) {
    const TrainerConfig tc = trainer_config(dir);
    const EngineConfig cfg = engine_config(dir);
    std::vector<float> losses;
    std::int64_t resumed = -1;
    run_ranks(ranks, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      Trainer trainer(engine, comm, data, nullptr, tc);
      const std::int64_t r = trainer.try_resume();
      const TrainerReport report = trainer.run();
      if (comm.rank() == 0) {
        losses = report.train_losses;
        resumed = r;
      }
    });
    return {losses, resumed};
  }
};

ElasticReport run_elastic_guarded(const ElasticConfig& ec,
                                  const EngineConfig& cfg, AioEngine& aio,
                                  const TokenDataset& data,
                                  const ModelFactory& factory,
                                  std::chrono::seconds limit) {
  std::promise<ElasticReport> done;
  std::future<ElasticReport> fut = done.get_future();
  std::thread([&done, &ec, &cfg, &aio, &data, &factory] {
    try {
      done.set_value(run_elastic(ec, cfg, aio, data, nullptr, factory));
    } catch (...) {
      done.set_exception(std::current_exception());
    }
  }).detach();
  if (fut.wait_for(limit) != std::future_status::ready) {
    ADD_FAILURE() << "elastic supervisor hung for " << limit.count()
                  << "s — rank-death detection failed to unblock it";
    std::abort();
  }
  return fut.get();
}

TEST(ProcElastic, KillNineMidStepRestartsBitIdentically) {
  if (kTsan) GTEST_SKIP() << "proc backend unsupported under TSan";
  FaultInjector::instance().clear();
  KillNineSetup setup;
  AioEngine aio;
  const fs::path dir = fs::temp_directory_path() /
                       ("zi_kill9_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // --- Phase A: probe. A never-firing proc_kill rule counts collective
  // entries per rank in a clean in-process run; the real kill fires at 3/4
  // of that count — after the step-6 checkpoint, before the run finishes.
  FaultInjector::instance().configure(
      "seed=3;proc_kill:error,rank=3,after=1000000000");
  const fs::path probe_dir = dir / "probe";
  fs::create_directories(probe_dir);
  {
    auto [losses, resumed] = setup.run_inproc(probe_dir, 4, aio);
    ASSERT_EQ(losses.size(), 10u);
    ASSERT_EQ(resumed, 0);
  }
  const std::uint64_t total =
      FaultInjector::instance().stats(FaultSite::kProcKill).ops;
  ASSERT_GT(total, 0u);
  ASSERT_EQ(total % 4, 0u) << "ranks ran asymmetric collective sequences";
  const std::int64_t per_rank = static_cast<std::int64_t>(total / 4);
  const std::int64_t kill_at = per_rank * 3 / 4;
  ASSERT_GT(kill_at, 0);

  // --- Phase B: the real thing. Rank 3's *process* SIGKILLs itself at its
  // kill_at-th collective entry (the forked children inherit the armed
  // injector). The supervisor sees the socket EOF, blames rank 3, poisons
  // the world, and relaunches 3 survivors. The restarted world has no rank
  // 3, so the rank=3 rule can never re-fire.
  FaultInjector::instance().clear();
  FaultInjector::instance().configure(
      "seed=3;proc_kill:error,rank=3,after=" + std::to_string(kill_at) +
      ",count=1");
  const std::uint64_t restarts_before = elastic_restart_count();

  ElasticConfig ec;
  ec.ranks = 4;
  ec.min_ranks = 2;
  ec.max_restarts = 2;
  ec.world.transport = TransportKind::kProc;
  ec.world.timeout_ms = 8000.0;
  ec.trainer = setup.trainer_config(dir);
  const EngineConfig cfg = setup.engine_config(dir);
  const ElasticReport rep = run_elastic_guarded(
      ec, cfg, aio, setup.data,
      [&setup] { return std::make_unique<Gpt>(setup.mc); },
      std::chrono::seconds(300));
  FaultInjector::instance().clear();

  ASSERT_TRUE(rep.succeeded) << (rep.attempts.empty()
                                     ? std::string("no attempts")
                                     : rep.attempts.back().error);
  EXPECT_EQ(rep.restarts, 1);
  EXPECT_EQ(rep.final_world, 3);
  EXPECT_EQ(elastic_restart_count(), restarts_before + 1);
  ASSERT_EQ(rep.attempts.size(), 2u);

  const ElasticAttempt& killed = rep.attempts[0];
  EXPECT_FALSE(killed.completed);
  EXPECT_EQ(killed.world, 4);
  EXPECT_EQ(killed.kind, WorldFailKind::kException);
  EXPECT_EQ(killed.culprit_rank, 3);
  EXPECT_EQ(killed.ranks_lost, 1);  // three survivors unblocked, none wedged
  EXPECT_TRUE(killed.rank_weights.empty());
  EXPECT_NE(killed.error.find("killed by signal"), std::string::npos)
      << "expected a real SIGKILL death, got: " << killed.error;

  const ElasticAttempt& recovered = rep.attempts[1];
  EXPECT_TRUE(recovered.completed);
  EXPECT_EQ(recovered.world, 3);
  // Detection off: the shrink stays uniform, byte-for-byte legacy behavior.
  EXPECT_TRUE(recovered.rank_weights.empty());
  const std::int64_t resumed = recovered.resumed_step;
  EXPECT_TRUE(resumed == 3 || resumed == 6 || resumed == 9)
      << "resumed from step " << resumed;
  ASSERT_EQ(rep.report.train_losses.size(),
            static_cast<std::size_t>(10 - resumed));

  // --- Phase C: control. Copy the checkpoint the survivors resumed from
  // and run a clean in-process 3-rank world from it. Universal checkpoints
  // + rank-order-deterministic reductions + the bit-exact result payload
  // path make the trajectories bitwise equal across the process boundary.
  const fs::path ctrl_dir = dir / "control";
  fs::create_directories(ctrl_dir);
  const std::string src = Trainer::checkpoint_file(
      setup.trainer_config(dir).checkpoint_path, resumed);
  ASSERT_TRUE(fs::exists(src));
  ASSERT_TRUE(fs::exists(ckpt_manifest_path(src)));
  const std::string dst = Trainer::checkpoint_file(
      setup.trainer_config(ctrl_dir).checkpoint_path, resumed);
  fs::copy_file(src, dst);
  fs::copy_file(ckpt_manifest_path(src), ckpt_manifest_path(dst));

  auto [control_losses, control_resumed] =
      setup.run_inproc(ctrl_dir, 3, aio);
  EXPECT_EQ(control_resumed, resumed);
  ASSERT_EQ(control_losses.size(), rep.report.train_losses.size());
  for (std::size_t i = 0; i < control_losses.size(); ++i) {
    EXPECT_EQ(control_losses[i], rep.report.train_losses[i])
        << "post-restart step " << resumed + static_cast<std::int64_t>(i) + 1
        << " diverged from the clean in-process control";
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace zi
