// Collectives tests, including the determinism property the ZeRO ≡ DDP
// equivalence rests on: allreduce == reduce_scatter + allgather exactly.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/world.hpp"
#include "common/half.hpp"

namespace zi {
namespace {

TEST(Comm, RanksAreDistinctAndComplete) {
  std::vector<std::atomic<int>> hits(4);
  run_ranks(4, [&](Communicator& comm) {
    hits[static_cast<std::size_t>(comm.rank())].fetch_add(1);
    EXPECT_EQ(comm.size(), 4);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Comm, ExceptionFromRankPropagates) {
  EXPECT_THROW(
      run_ranks(2,
                [](Communicator& comm) {
                  if (comm.rank() == 1) throw Error("rank failure");
                }),
      Error);
}

TEST(Comm, Broadcast) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> data(16, -1.0f);
    if (comm.rank() == 2) {
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i);
    }
    comm.broadcast<float>(data, /*root=*/2);
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(data[i], static_cast<float>(i));
    }
  });
}

TEST(Comm, Allgather) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> send(4);
    for (int i = 0; i < 4; ++i) {
      send[static_cast<std::size_t>(i)] = static_cast<float>(comm.rank() * 10 + i);
    }
    std::vector<float> recv(12);
    comm.allgather<float>(send, recv);
    for (int r = 0; r < 3; ++r) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(r * 4 + i)],
                  static_cast<float>(r * 10 + i));
      }
    }
  });
}

TEST(Comm, ReduceScatterSum) {
  run_ranks(4, [](Communicator& comm) {
    // Every rank contributes [rank, rank, ...]; each chunk sums to 0+1+2+3=6.
    std::vector<float> send(8, static_cast<float>(comm.rank()));
    std::vector<float> recv(2);
    comm.reduce_scatter_sum<float>(send, recv);
    EXPECT_EQ(recv[0], 6.0f);
    EXPECT_EQ(recv[1], 6.0f);
  });
}

TEST(Comm, AllreduceSum) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> data(10);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<float>(comm.rank()) + static_cast<float>(i) * 0.5f;
    }
    comm.allreduce_sum<float>(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_FLOAT_EQ(data[i], 6.0f + 4.0f * static_cast<float>(i) * 0.5f);
    }
  });
}

// THE determinism property: allreduce(x) == allgather(reduce_scatter(x))
// bit-for-bit, because both sum in ascending rank order with fp32
// accumulation. ZeRO-3 uses the right-hand side, DDP the left.
TEST(CommProperty, AllreduceEqualsReduceScatterPlusAllgather) {
  constexpr int kRanks = 4;
  constexpr std::size_t kPerRank = 32;
  run_ranks(kRanks, [&](Communicator& comm) {
    std::vector<float> contribution(kPerRank * kRanks);
    for (std::size_t i = 0; i < contribution.size(); ++i) {
      // Non-associative-friendly values: sums depend on order.
      contribution[i] =
          1.0f + 1e-7f * static_cast<float>((comm.rank() * 131 + static_cast<int>(i) * 17) % 97);
    }
    std::vector<float> via_allreduce = contribution;
    comm.allreduce_sum<float>(via_allreduce);

    std::vector<float> shard(kPerRank);
    comm.reduce_scatter_sum<float>(contribution, shard);
    std::vector<float> via_rs_ag(kPerRank * kRanks);
    comm.allgather<float>(shard, via_rs_ag);

    for (std::size_t i = 0; i < via_rs_ag.size(); ++i) {
      EXPECT_EQ(via_allreduce[i], via_rs_ag[i]) << i;
    }
  });
}

TEST(Comm, ReduceScatterHalfAccumulatesInFp32) {
  run_ranks(4, [](Communicator& comm) {
    // 2048 in fp16 has ulp 2: adding 1.0 four times in pure fp16 would
    // stall at 2048. fp32 accumulation must reach 2052.
    std::vector<half> send(4, half(comm.rank() == 0 ? 2048.0f : 1.0f));
    std::vector<half> recv(1);
    comm.reduce_scatter_sum<half>(send, recv);
    EXPECT_EQ(recv[0].to_float(), 2052.0f);
  });
}

TEST(Comm, Gather) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> send(2, static_cast<float>(comm.rank() + 1));
    std::vector<float> recv(comm.rank() == 0 ? 6 : 0);
    comm.gather<float>(send, recv, /*root=*/0);
    if (comm.rank() == 0) {
      EXPECT_EQ(recv[0], 1.0f);
      EXPECT_EQ(recv[2], 2.0f);
      EXPECT_EQ(recv[4], 3.0f);
    }
  });
}

TEST(Comm, AllreduceMax) {
  run_ranks(5, [](Communicator& comm) {
    const double v = comm.rank() == 3 ? 99.5 : static_cast<double>(comm.rank());
    EXPECT_EQ(comm.allreduce_max(v), 99.5);
  });
}

TEST(Comm, TrafficCountersAccumulate) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<float> send(8, 1.0f);
    std::vector<float> recv(16);
    comm.allgather<float>(send, recv);
    std::vector<float> rs_recv(8);
    comm.reduce_scatter_sum<float>(recv, rs_recv);
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.traffic().allgather_bytes.load(), 2u * 8u * sizeof(float));
      EXPECT_EQ(comm.traffic().reduce_scatter_bytes.load(),
                2u * 16u * sizeof(float));
      EXPECT_GE(comm.traffic().barriers.load(), 2u);
      EXPECT_EQ(comm.traffic().collectives.load(), 4u);
    }
    comm.barrier();
  });
}

TEST(Comm, SingleRankDegenerateCase) {
  run_ranks(1, [](Communicator& comm) {
    std::vector<float> data(4, 2.0f);
    comm.allreduce_sum<float>(data);
    EXPECT_EQ(data[0], 2.0f);
    std::vector<float> recv(4);
    comm.allgather<float>(std::span<const float>(data), recv);
    EXPECT_EQ(recv[3], 2.0f);
    std::vector<float> rs(4);
    comm.reduce_scatter_sum<float>(std::span<const float>(data), rs);
    EXPECT_EQ(rs[0], 2.0f);
  });
}

TEST(Comm, RepeatedCollectivesDoNotDeadlock) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> v(16, static_cast<float>(comm.rank()));
    for (int iter = 0; iter < 50; ++iter) {
      comm.allreduce_sum<float>(v);
      comm.barrier();
      std::vector<float> shard(4);
      comm.reduce_scatter_sum<float>(std::span<const float>(v), shard);
      comm.allgather<float>(std::span<const float>(shard), v);
    }
  });
}

}  // namespace
}  // namespace zi
