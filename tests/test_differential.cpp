// Differential correctness harness.
//
// Every (ZeRO stage, placement) strategy is compared head-to-head against
// the classic data-parallel baseline on the same model and data: the loss
// trajectory must be bit-identical at every step, AND the final model state
// (fp16 params, fp32 master weights, momentum, variance) must match
// exactly. State equality is checked by saving a universal checkpoint from
// both runs — the checkpoint stores values unpartitioned, so two strategies
// that agree produce byte-identical payloads regardless of how they shard
// or place the state.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig tiny_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.tie_embeddings = true;
  cfg.checkpoint_activations = true;
  return cfg;
}

void make_batch(int rank, int step, const GptConfig& cfg, int batch,
                std::vector<std::int32_t>& tokens,
                std::vector<std::int32_t>& targets) {
  const std::int64_t n = batch * cfg.seq;
  tokens.resize(static_cast<std::size_t>(n));
  targets.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t v = (rank * 31 + step * 7 + i * 3) % (cfg.vocab - 1);
    tokens[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(v);
    targets[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>((v * 3 + 3) % (cfg.vocab - 1));
  }
}

std::vector<std::byte> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> buf((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const std::byte*>(buf.data());
  return {p, p + buf.size()};
}

/// Train `steps` steps and checkpoint the final state; returns the loss
/// trajectory (rank 0's view of the global mean).
std::vector<float> run_and_checkpoint(EngineConfig cfg,
                                      const GptConfig& model_cfg, int world,
                                      int steps, const fs::path& dir,
                                      const std::string& ckpt) {
  cfg.nvme_dir = (dir / "swap").string();
  std::vector<float> losses(static_cast<std::size_t>(steps));
  AioEngine aio;
  run_ranks(world, [&](Communicator& comm) {
    Gpt model(model_cfg);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    for (int s = 0; s < steps; ++s) {
      make_batch(comm.rank(), s, model_cfg, 2, tokens, targets);
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) losses[static_cast<std::size_t>(s)] = st.global_loss;
    }
    engine.save_checkpoint(ckpt);
  });
  return losses;
}

struct Strategy {
  std::string name;
  EngineConfig (*make)();
};

EngineConfig make_zero_inf_nvme_acts() {
  EngineConfig c = preset_zero_infinity_nvme();
  c.activation_placement = Placement::kNvme;
  return c;
}

class DifferentialTest : public ::testing::TestWithParam<Strategy> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_diff_" + GetParam().name + "_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_P(DifferentialTest, MatchesDdpBaselineInLossesAndFinalState) {
  const GptConfig model_cfg = tiny_model();
  constexpr int kWorld = 2;
  constexpr int kSteps = 6;

  const std::string base_ckpt = (dir_ / "ddp.ckpt").string();
  const std::string test_ckpt = (dir_ / "strategy.ckpt").string();

  const std::vector<float> base_losses = run_and_checkpoint(
      preset_data_parallel(), model_cfg, kWorld, kSteps, dir_, base_ckpt);
  const std::vector<float> test_losses = run_and_checkpoint(
      GetParam().make(), model_cfg, kWorld, kSteps, dir_, test_ckpt);

  // Losses: bit-identical, every step.
  ASSERT_EQ(base_losses.size(), test_losses.size());
  for (std::size_t s = 0; s < base_losses.size(); ++s) {
    EXPECT_EQ(base_losses[s], test_losses[s]) << "step " << s;
  }

  // Final state: the unpartitioned checkpoint payloads are byte-identical
  // (fp16 params + fp32 master/momentum/variance + scaler state).
  const auto base_bytes = file_bytes(base_ckpt);
  const auto test_bytes = file_bytes(test_ckpt);
  ASSERT_FALSE(base_bytes.empty());
  ASSERT_EQ(base_bytes.size(), test_bytes.size());
  EXPECT_TRUE(base_bytes == test_bytes);
}

// ---------------------------------------------------------------------------
// The transfer scheduler's coalescing must be invisible to training: the
// merged backend requests change only how bytes travel, never which bytes.
// A ZeRO-3 + NVMe run (params, optimizer state, and activations all on
// NVMe, so every stream crosses the scheduler) with coalescing on must
// match the same run with coalescing off bit-for-bit — every step's loss
// and the final unpartitioned checkpoint payload.

TEST(CoalesceDifferential, CoalescingOnVsOffIsBitIdentical) {
  const fs::path dir = fs::temp_directory_path() /
                       ("zi_diff_coalesce_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  const GptConfig model_cfg = tiny_model();
  constexpr int kWorld = 2;
  constexpr int kSteps = 20;
  const std::string on_ckpt = (dir / "on.ckpt").string();
  const std::string off_ckpt = (dir / "off.ckpt").string();

  // DataMover reads ZI_MOVE_* at construction (inside run_and_checkpoint),
  // so toggling the env between runs flips exactly the coalescer. A single
  // in-flight slot makes queues actually form at this tiny scale, so the
  // coalesce-on run really does ride merged requests (hundreds of
  // transfers per run), not just the solo path.
  ::setenv("ZI_MOVE_MAX_INFLIGHT", "1", 1);
  ::setenv("ZI_MOVE_COALESCE", "1", 1);
  const std::vector<float> on_losses = run_and_checkpoint(
      make_zero_inf_nvme_acts(), model_cfg, kWorld, kSteps, dir, on_ckpt);
  ::setenv("ZI_MOVE_COALESCE", "0", 1);
  const std::vector<float> off_losses = run_and_checkpoint(
      make_zero_inf_nvme_acts(), model_cfg, kWorld, kSteps, dir, off_ckpt);
  ::unsetenv("ZI_MOVE_COALESCE");
  ::unsetenv("ZI_MOVE_MAX_INFLIGHT");

  ASSERT_EQ(on_losses.size(), off_losses.size());
  for (std::size_t s = 0; s < on_losses.size(); ++s) {
    EXPECT_EQ(on_losses[s], off_losses[s]) << "step " << s;
  }
  const auto on_bytes = file_bytes(on_ckpt);
  const auto off_bytes = file_bytes(off_ckpt);
  ASSERT_FALSE(on_bytes.empty());
  ASSERT_EQ(on_bytes.size(), off_bytes.size());
  EXPECT_TRUE(on_bytes == off_bytes);

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DifferentialTest,
    ::testing::Values(Strategy{"zero1", &preset_zero1},
                      Strategy{"zero2", &preset_zero2},
                      Strategy{"zero_offload", &preset_zero_offload},
                      Strategy{"zero3", &preset_zero3},
                      Strategy{"zero_inf_cpu", &preset_zero_infinity_cpu},
                      Strategy{"zero_inf_nvme", &preset_zero_infinity_nvme},
                      Strategy{"zero_inf_nvme_acts", &make_zero_inf_nvme_acts}),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace zi
