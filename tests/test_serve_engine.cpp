// ServeEngine integration: continuous batching over the weight-streaming
// core, run inside real multi-rank worlds with NVMe parameter shards.
//
// The acceptance property (the serving analogue of the training
// bit-identity tables): a 4-rank ZeRO-3 + NVMe ServeEngine run with many
// concurrent request streams under continuous batching produces token
// streams bit-identical to (a) a sequential max_batch=1 control and (b) a
// full-window recompute greedy decode through StreamEngine::forward_logits
// — batching, KV tiering, and admission order never change values.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "serve/serve_engine.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig serve_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 24;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.tie_embeddings = true;
  cfg.checkpoint_activations = false;
  return cfg;
}

// Deterministic synthetic request streams: id i gets a prompt of length
// 3 + (i % 4) over a fixed periodic vocabulary walk.
std::vector<ServeRequest> make_requests(int n) {
  std::vector<ServeRequest> reqs;
  for (int i = 0; i < n; ++i) {
    ServeRequest r;
    r.id = i;
    const int len = 3 + (i % 4);
    for (int t = 0; t < len; ++t) {
      r.prompt.push_back(static_cast<std::int32_t>((i * 7 + t * 3 + 1) % 31));
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

struct ServeOutcome {
  std::vector<std::vector<std::int32_t>> tokens;  // by request id
  ServeReport report;
  std::vector<RequestReport> request_reports;
  std::uint64_t kv_fetch_bytes = 0;
  std::uint64_t kv_spill_bytes = 0;
};

ServeOutcome run_serve(int world, int max_batch, KvTier tier,
                       const std::vector<ServeRequest>& requests,
                       const fs::path& dir, const std::string& log_path) {
  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.param_placement = Placement::kNvme;
  cfg.nvme_dir = dir.string();
  cfg.prefetch_depth = 2;
  cfg.persistence_threshold_elems = 32;

  ServeConfig scfg;
  scfg.max_batch = max_batch;
  scfg.max_new_tokens = 4;
  scfg.kv_tier = tier;
  scfg.request_log = log_path;

  ServeOutcome out;
  AioEngine aio;
  run_ranks(world, [&](Communicator& comm) {
    Gpt model(serve_model());
    StreamEngine eng(model, comm, aio, cfg);
    ServeEngine serve(eng, model, scfg);
    std::vector<ServeResult> results = serve.run(requests);
    if (comm.rank() == 0) {
      for (ServeResult& r : results) {
        out.tokens.push_back(std::move(r.tokens));
        out.request_reports.push_back(r.report);
      }
      out.report = serve.report();
      const auto st = eng.resources().mover().stats();
      out.kv_fetch_bytes = st.route(Route::kKvFetch).bytes;
      out.kv_spill_bytes = st.route(Route::kKvSpill).bytes;
    }
  });
  return out;
}

class ServeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_serve_engine_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// The acceptance run: 4 ranks, 10 concurrent request streams through 4
// slots, KV on NVMe, per-request JSONL emitted — bit-identical to the
// sequential control.
TEST_F(ServeEngineTest, FourRankContinuousBatchingBitIdenticalToSequential) {
  const std::vector<ServeRequest> reqs = make_requests(10);
  const std::string log = (dir_ / "serve.jsonl").string();
  const ServeOutcome batched =
      run_serve(4, /*max_batch=*/4, KvTier::kNvme, reqs, dir_, log);
  const ServeOutcome sequential =
      run_serve(4, /*max_batch=*/1, KvTier::kNvme, reqs, dir_, "");

  ASSERT_EQ(batched.tokens.size(), reqs.size());
  EXPECT_EQ(batched.tokens, sequential.tokens);
  for (const auto& stream : batched.tokens) EXPECT_EQ(stream.size(), 4u);

  // Aggregate accounting.
  EXPECT_EQ(batched.report.requests, 10);
  EXPECT_EQ(batched.report.tokens_out, 40);
  EXPECT_GT(batched.report.tokens_per_second, 0.0);
  EXPECT_LE(batched.report.p50_latency_seconds,
            batched.report.p99_latency_seconds);
  for (const RequestReport& r : batched.request_reports) {
    EXPECT_GE(r.queue_seconds, 0.0);
    EXPECT_GT(r.prefill_seconds, 0.0);
    EXPECT_EQ(r.tokens_out, 4);
  }

  // KV state actually tiered through the new DataMover routes.
  EXPECT_GT(batched.kv_fetch_bytes, 0u);
  EXPECT_GT(batched.kv_spill_bytes, 0u);

  // One JSONL line per request plus the aggregate line, all parseable
  // enough to carry the latency fields.
  std::ifstream in(log);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), reqs.size() + 1);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_NE(lines[i].find("\"request_id\":"), std::string::npos);
    EXPECT_NE(lines[i].find("\"queue_seconds\":"), std::string::npos);
    EXPECT_NE(lines[i].find("\"decode_seconds\":"), std::string::npos);
  }
  EXPECT_NE(lines.back().find("\"p99_latency_seconds\":"), std::string::npos);
}

// KV tier is a placement knob, not a values knob.
TEST_F(ServeEngineTest, KvTiersProduceIdenticalTokenStreams) {
  const std::vector<ServeRequest> reqs = make_requests(5);
  const ServeOutcome gpu =
      run_serve(2, 3, KvTier::kGpu, reqs, dir_, "");
  const ServeOutcome cpu =
      run_serve(2, 3, KvTier::kCpu, reqs, dir_, "");
  const ServeOutcome nvme =
      run_serve(2, 3, KvTier::kNvme, reqs, dir_, "");
  EXPECT_EQ(gpu.tokens, cpu.tokens);
  EXPECT_EQ(gpu.tokens, nvme.tokens);
  EXPECT_EQ(gpu.kv_fetch_bytes, 0u);  // resident: no route traffic
  EXPECT_GT(cpu.kv_fetch_bytes, 0u);
  EXPECT_GT(nvme.kv_fetch_bytes, 0u);
}

// Incremental KV decode == full-window recompute, request by request.
TEST_F(ServeEngineTest, MatchesFullRecomputeGreedyDecode) {
  const std::vector<ServeRequest> reqs = make_requests(3);
  const ServeOutcome served =
      run_serve(2, 2, KvTier::kCpu, reqs, dir_, "");

  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.param_placement = Placement::kNvme;
  cfg.nvme_dir = dir_.string();
  cfg.prefetch_depth = 2;
  cfg.persistence_threshold_elems = 32;
  std::vector<std::vector<std::int32_t>> recomputed(reqs.size());
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(serve_model());
    StreamEngine eng(model, comm, aio, cfg);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      std::vector<std::int32_t> window = reqs[i].prompt;
      std::vector<std::int32_t> generated;
      for (int t = 0; t < 4; ++t) {
        const Tensor logits = eng.forward_logits(window);
        const std::int32_t tok = StreamEngine::argmax_row(
            logits, static_cast<std::int64_t>(window.size()) - 1);
        window.push_back(tok);
        generated.push_back(tok);
      }
      if (comm.rank() == 0) recomputed[i] = std::move(generated);
    }
  });
  EXPECT_EQ(served.tokens, recomputed);
}

// Open-loop arrivals: later arrivals queue (FIFO) and still complete with
// the same token streams; queue time is accounted per request.
TEST_F(ServeEngineTest, StaggeredArrivalsGateAdmissionWithoutChangingTokens) {
  std::vector<ServeRequest> staggered = make_requests(4);
  staggered[2].arrival_seconds = 0.02;
  staggered[3].arrival_seconds = 0.05;
  const ServeOutcome open_loop =
      run_serve(1, 2, KvTier::kCpu, staggered, dir_, "");
  const ServeOutcome all_at_zero =
      run_serve(1, 2, KvTier::kCpu, make_requests(4), dir_, "");
  EXPECT_EQ(open_loop.tokens, all_at_zero.tokens);
  ASSERT_EQ(open_loop.request_reports.size(), 4u);
  for (const RequestReport& r : open_loop.request_reports) {
    EXPECT_GE(r.queue_seconds, 0.0);
  }
}

}  // namespace
}  // namespace zi
