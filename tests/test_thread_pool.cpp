#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace zi {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.enqueue([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.tasks_completed(), 1000u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.enqueue([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, ResultsFromManyWorkers) {
  ThreadPool pool(8);
  std::vector<std::future<int>> futs;
  futs.reserve(100);
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.enqueue([&count] { count.fetch_add(1); });
    }
  }  // destructor joins after queue empties
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace zi
