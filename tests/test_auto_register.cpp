// Sec. 7.1.1's AUTOMATIC external-parameter registration: "When a
// partitioned parameter is accessed, we do a blocking allgather on the
// parameter, register it as an external parameter, and then return the
// gathered parameter" — no user code change required.
//
// The test model deliberately accesses another module's parameter in its
// forward WITHOUT registering it. Iteration 1 triggers the interceptor
// (blocking gather + auto-registration); from then on the normal hooks
// gather it like any other external parameter.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "comm/world.hpp"
#include "core/coordinator.hpp"
#include "model/linear.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

/// A module that scales its input by the first element of ANOTHER module's
/// weight — an unregistered cross-module access (the GPT weight-tying
/// pattern, minus the manual registration).
struct Borrower : public Module {
  explicit Borrower(Parameter* borrowed)
      : Module("borrower"), borrowed_(borrowed) {}

  Tensor forward(const Tensor& x) override {
    // First touch of an ungathered parameter → interceptor fires.
    const float scale = borrowed_->data()[0];
    Tensor y = x.clone();
    for (std::int64_t i = 0; i < y.numel(); ++i) y.set(i, y.get(i) * scale);
    saved_input_ = x.clone();
    return y;
  }

  Tensor backward(const Tensor& dy) override {
    const float scale = borrowed_->data()[0];
    // d(borrowed[0]) += sum(dy * x).
    double acc = 0.0;
    for (std::int64_t i = 0; i < dy.numel(); ++i) {
      acc += static_cast<double>(dy.get(i)) * saved_input_.get(i);
    }
    borrowed_->grad_data()[0] += static_cast<float>(acc);
    Tensor dx = dy.clone();
    for (std::int64_t i = 0; i < dx.numel(); ++i) {
      dx.set(i, dx.get(i) * scale);
    }
    saved_input_ = Tensor();
    return dx;
  }

  Parameter* borrowed_;
  Tensor saved_input_;
};

struct BorrowModel : public Module {
  BorrowModel() : Module("m") {
    owner = std::make_unique<Linear>("m.owner", 2, 2);
    borrower = std::make_unique<Borrower>(owner->weight());
    register_child(owner.get());
    register_child(borrower.get());
  }
  Tensor forward(const Tensor& x) override {
    return borrower->run_forward(owner->run_forward(x));
  }
  Tensor backward(const Tensor& dy) override {
    return owner->run_backward(borrower->run_backward(dy));
  }
  std::unique_ptr<Linear> owner;
  std::unique_ptr<Borrower> borrower;
};

TEST(AutoRegister, InterceptedAccessGathersAndRegisters) {
  const fs::path dir =
      fs::temp_directory_path() / ("zi_autoreg_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.param_placement = Placement::kCpu;
  cfg.optimizer_placement = Placement::kCpu;
  cfg.grad_placement = Placement::kCpu;
  cfg.nvme_dir = dir.string();

  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    BorrowModel model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 2);
    ParamCoordinator coord(store, res, comm, cfg);
    coord.install(model);

    EXPECT_TRUE(model.borrower->external_parameters().empty());

    auto one_pass = [&] {
      coord.begin_iteration();
      Tensor x({1, 2}, DType::kF32);
      x.fill(1.0f);
      Tensor y = model.forward(x);
      Tensor dy({1, 2}, DType::kF32);
      dy.fill(1.0f);
      model.backward(dy);
      coord.end_iteration();
      return y.get(0);
    };

    // Iteration 1: the forward AND backward touches are intercepted (the
    // parameter is released after the owner's post-backward, so the
    // borrower's backward access re-gathers it).
    const float y1 = one_pass();
    EXPECT_GE(coord.stats().auto_registrations, 1u);
    ASSERT_EQ(model.borrower->external_parameters().size(), 1u);
    EXPECT_EQ(model.borrower->external_parameters()[0]->name(),
              "m.owner.weight");

    // Iteration 2+: the hooks now handle the gather; no new interceptions
    // once the (re-recorded) trace stabilizes.
    (void)one_pass();
    const auto after_two = coord.stats().auto_registrations;
    const float y3 = one_pass();
    EXPECT_EQ(coord.stats().auto_registrations, after_two);
    EXPECT_TRUE(std::isfinite(y1) && std::isfinite(y3));

    // The borrowed parameter's gradient flows to its owner exactly once:
    // checked indirectly — everything is released and reduced cleanly.
    for (Parameter* p : model.all_parameters()) {
      EXPECT_EQ(p->status(), Parameter::Status::kNotAvailable) << p->name();
      EXPECT_FALSE(p->grad_tensor().defined()) << p->name();
    }
  });
  fs::remove_all(dir);
}

TEST(AutoRegister, NoInterceptorMeansHardError) {
  // Without a coordinator (no interceptor installed), the same access is a
  // loud failure — the availability state machine's job.
  BorrowModel model;
  model.finalize();
  Tensor x({1, 2}, DType::kF32);
  EXPECT_THROW(model.forward(x), Error);
}

}  // namespace
}  // namespace zi
