// ParamCoordinator tests: gather correctness, release semantics, the
// operator-sequence trace, prefetching, and gradient reduce-scatter — run
// inside a real multi-rank world.
#include <gtest/gtest.h>

#include <filesystem>

#include "comm/world.hpp"
#include "core/coordinator.hpp"
#include "model/linear.hpp"
#include "model/local_store.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_coord_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  EngineConfig nvme_config() const {
    EngineConfig cfg;
    cfg.stage = ZeroStage::kStage3;
    cfg.param_placement = Placement::kNvme;
    cfg.optimizer_placement = Placement::kCpu;
    cfg.grad_placement = Placement::kCpu;
    cfg.nvme_dir = dir_.string();
    return cfg;
  }

  fs::path dir_;
};

struct TwoLinears : public Module {
  TwoLinears() : Module("m") {
    a = std::make_unique<Linear>("m.a", 4, 4);
    b = std::make_unique<Linear>("m.b", 4, 4);
    register_child(a.get());
    register_child(b.get());
  }
  Tensor forward(const Tensor& x) override {
    return b->run_forward(a->run_forward(x));
  }
  Tensor backward(const Tensor& dy) override {
    return a->run_backward(b->run_backward(dy));
  }
  std::unique_ptr<Linear> a, b;
};

TEST_F(CoordinatorTest, GatherMaterializesExactInitValues) {
  AioEngine aio;
  const EngineConfig cfg = nvme_config();
  run_ranks(3, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 3);
    ParamCoordinator coord(store, res, comm, cfg);

    Parameter* w = model.a->weight();
    EXPECT_EQ(w->status(), Parameter::Status::kNotAvailable);
    coord.fetch(w, /*for_backward=*/false);
    EXPECT_EQ(w->status(), Parameter::Status::kAvailable);
    // Gathered fp32 values = fp16-rounded deterministic init.
    for (std::int64_t i = 0; i < w->numel(); ++i) {
      EXPECT_EQ(w->full_tensor().get(i), half(w->init_value(i)).to_float());
    }
    coord.release(w);
    EXPECT_EQ(w->status(), Parameter::Status::kNotAvailable);
    EXPECT_FALSE(w->full_tensor().defined());
  });
}

TEST_F(CoordinatorTest, ReleaseReturnsArenaMemory) {
  AioEngine aio;
  const EngineConfig cfg = nvme_config();
  run_ranks(2, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 2);
    ParamCoordinator coord(store, res, comm, cfg);
    const auto baseline = res.gpu().used();
    for (Parameter* p : model.all_parameters()) coord.fetch(p, false);
    EXPECT_GT(res.gpu().used(), baseline);
    for (Parameter* p : model.all_parameters()) coord.release(p);
    EXPECT_EQ(res.gpu().used(), baseline);
  });
}

TEST_F(CoordinatorTest, HooksDriveFullForwardBackwardCycle) {
  AioEngine aio;
  const EngineConfig cfg = nvme_config();
  run_ranks(2, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 2);
    ParamCoordinator coord(store, res, comm, cfg);
    coord.install(model);
    coord.begin_iteration();

    Tensor x({2, 4}, DType::kF32);
    x.fill(0.5f);
    Tensor y = model.forward(x);  // children via run_forward → hooks fire
    Tensor dy({2, 4}, DType::kF32);
    dy.fill(1.0f);
    model.backward(dy);

    // Post-backward: everything released, all grads reduced and stored.
    for (Parameter* p : model.all_parameters()) {
      EXPECT_EQ(p->status(), Parameter::Status::kNotAvailable) << p->name();
      EXPECT_FALSE(p->grad_tensor().defined()) << p->name();
    }
    EXPECT_EQ(coord.stats().grads_reduced, 4u);
    EXPECT_EQ(res.gpu().used(), 0u);
  });
}

TEST_F(CoordinatorTest, PrefetchKicksInAfterFirstIteration) {
  AioEngine aio;
  EngineConfig cfg = nvme_config();
  cfg.prefetch_depth = 2;
  cfg.overlap_transfers = true;
  run_ranks(2, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 2);
    ParamCoordinator coord(store, res, comm, cfg);
    coord.install(model);

    auto one_pass = [&] {
      coord.begin_iteration();
      Tensor x({1, 4}, DType::kF32);
      x.fill(1.0f);
      Tensor y = model.forward(x);
      Tensor dy({1, 4}, DType::kF32);
      dy.fill(1.0f);
      model.backward(dy);
    };

    one_pass();  // records the trace
    EXPECT_EQ(coord.stats().prefetch_hits, 0u);
    one_pass();  // replays it with prefetching
    EXPECT_GT(coord.stats().prefetches_issued, 0u);
    EXPECT_GT(coord.stats().prefetch_hits, 0u);
    EXPECT_EQ(coord.stats().trace_invalidations, 0u);
  });
}

TEST_F(CoordinatorTest, PrefetchDisabledWhenOverlapOff) {
  AioEngine aio;
  EngineConfig cfg = nvme_config();
  cfg.overlap_transfers = false;
  run_ranks(2, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 2);
    ParamCoordinator coord(store, res, comm, cfg);
    coord.install(model);
    for (int iter = 0; iter < 3; ++iter) {
      coord.begin_iteration();
      Tensor x({1, 4}, DType::kF32);
      x.fill(1.0f);
      Tensor y = model.forward(x);
      Tensor dy({1, 4}, DType::kF32);
      dy.fill(1.0f);
      model.backward(dy);
    }
    EXPECT_EQ(coord.stats().prefetches_issued, 0u);
  });
}

TEST_F(CoordinatorTest, DynamicWorkflowInvalidatesTrace) {
  // Iteration 1 fetches a then b; iteration 2 fetches b then a. The
  // coordinator must detect the divergence and re-record (Sec. 6.2).
  AioEngine aio;
  EngineConfig cfg = nvme_config();
  cfg.prefetch_depth = 2;
  run_ranks(2, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 2);
    ParamCoordinator coord(store, res, comm, cfg);

    auto fetch_release = [&](Linear& lin) {
      for (const auto& p : lin.own_parameters()) coord.fetch(p.get(), false);
      for (const auto& p : lin.own_parameters()) coord.release(p.get());
    };

    coord.begin_iteration();
    fetch_release(*model.a);
    fetch_release(*model.b);
    coord.begin_iteration();
    fetch_release(*model.b);  // diverges from the recorded trace
    fetch_release(*model.a);
    EXPECT_GT(coord.stats().trace_invalidations, 0u);
    // Third iteration follows the new trace cleanly.
    const auto invalidations = coord.stats().trace_invalidations;
    coord.begin_iteration();
    fetch_release(*model.b);
    fetch_release(*model.a);
    EXPECT_EQ(coord.stats().trace_invalidations, invalidations);
  });
}

TEST_F(CoordinatorTest, BroadcastModePrefetchAccountingStaysTruthful) {
  // Broadcast-mode (the ZeRO-Offload baseline) prefetch: only the owning
  // rank has a shard to pre-load, so non-owners must issue nothing — and
  // every counter must stay truthful: prefetches_issued == prefetch_hits +
  // prefetch_drops once nothing is in flight.
  AioEngine aio;
  EngineConfig cfg = nvme_config();
  cfg.bandwidth_centric = false;  // broadcast-based retrieval
  cfg.optimizer_placement = Placement::kCpu;
  cfg.param_placement = Placement::kCpu;  // broadcast baseline predates NVMe
  cfg.prefetch_depth = 2;
  cfg.overlap_transfers = true;
  run_ranks(2, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, model.all_parameters(), comm.rank(), 2);
    ASSERT_TRUE(store.broadcast_mode());
    ParamCoordinator coord(store, res, comm, cfg);
    coord.install(model);

    std::uint64_t owned = 0;
    for (Parameter* p : model.all_parameters()) {
      if (store.param_owner(p) == comm.rank()) ++owned;
    }

    auto one_pass = [&] {
      coord.begin_iteration();
      Tensor x({1, 4}, DType::kF32);
      x.fill(1.0f);
      Tensor y = model.forward(x);
      Tensor dy({1, 4}, DType::kF32);
      dy.fill(1.0f);
      model.backward(dy);
    };
    one_pass();  // records the trace
    one_pass();  // replays it with prefetching
    one_pass();

    const auto& st = coord.stats();
    if (owned == 0) {
      // A rank that owns nothing must not fabricate prefetch traffic.
      EXPECT_EQ(st.prefetches_issued, 0u);
      EXPECT_EQ(st.prefetch_hits, 0u);
      EXPECT_EQ(st.prefetch_drops, 0u);
    } else {
      EXPECT_GT(st.prefetches_issued, 0u);
      EXPECT_GT(st.prefetch_hits, 0u);
    }
    // Nothing may be issued beyond what the owner can serve, and with
    // begin_iteration() draining in-flight entries the ledger must close.
    coord.begin_iteration();  // drop anything still staged
    EXPECT_EQ(st.prefetch_hits + st.prefetch_drops, st.prefetches_issued);
  });
}

TEST_F(CoordinatorTest, GradReduceScatterSumsAcrossRanks) {
  AioEngine aio;
  const EngineConfig cfg = nvme_config();
  run_ranks(2, [&](Communicator& comm) {
    Linear lin("lin", 2, 2);
    lin.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, lin.all_parameters(), comm.rank(), 2);
    ParamCoordinator coord(store, res, comm, cfg);
    coord.install(lin);
    coord.begin_iteration();

    // Distinct inputs per rank; grads must equal the rank-sum.
    Tensor x({1, 2}, DType::kF32);
    x.set(0, comm.rank() == 0 ? 1.0f : 3.0f);
    x.set(1, 0.0f);
    Tensor y = lin.run_forward(x);
    Tensor dy({1, 2}, DType::kF32);
    dy.fill(1.0f);
    lin.run_backward(dy);

    // dW[0][j] = x[0] * dy[j] summed over ranks = (1 + 3) = 4.
    Parameter* w = lin.weight();
    const ShardSpec& spec = store.param_spec(w);
    std::vector<half> shard(static_cast<std::size_t>(spec.shard_elems));
    store.load_grad_shard(w, shard);
    // w shape [2,2] → flat [w00, w01, w10, w11]; rank 0 holds {w00, w01}.
    if (comm.rank() == 0) {
      EXPECT_EQ(shard[0].to_float(), 4.0f);
      EXPECT_EQ(shard[1].to_float(), 4.0f);
    } else {
      EXPECT_EQ(shard[0].to_float(), 0.0f);  // x[1] = 0 on both ranks
      EXPECT_EQ(shard[1].to_float(), 0.0f);
    }
  });
}

TEST_F(CoordinatorTest, RequiresStageThree) {
  AioEngine aio;
  EngineConfig cfg = nvme_config();
  cfg.stage = ZeroStage::kStage2;
  run_ranks(1, [&](Communicator& comm) {
    Linear lin("lin", 2, 2);
    lin.finalize();
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, lin.all_parameters(), comm.rank(), 1);
    EXPECT_THROW(ParamCoordinator(store, res, comm, cfg), Error);
  });
}

}  // namespace
}  // namespace zi
