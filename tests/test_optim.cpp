// Adam + loss-scaler tests, including hand-computed reference values.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "optim/adam.hpp"
#include "optim/loss_scaler.hpp"

namespace zi {
namespace {

TEST(Adam, FirstStepMatchesHandComputation) {
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.beta1 = 0.9f;
  cfg.beta2 = 0.999f;
  cfg.eps = 1e-8f;
  std::vector<float> w = {1.0f};
  std::vector<float> m = {0.0f};
  std::vector<float> v = {0.0f};
  std::vector<float> g = {0.5f};
  adam_step(cfg, 1, w, m, v, g);
  // m = 0.1*0.5 = 0.05; v = 0.001*0.25 = 2.5e-4
  // m_hat = 0.05/0.1 = 0.5; v_hat = 2.5e-4/0.001 = 0.25
  // update = 0.5 / (0.5 + 1e-8) ≈ 1.0 → w = 1 - 0.1 = 0.9
  EXPECT_NEAR(m[0], 0.05f, 1e-7f);
  EXPECT_NEAR(v[0], 2.5e-4f, 1e-8f);
  EXPECT_NEAR(w[0], 0.9f, 1e-5f);
}

TEST(Adam, SecondStepAccumulatesMoments) {
  AdamConfig cfg;
  cfg.lr = 0.1f;
  std::vector<float> w = {1.0f}, m = {0.0f}, v = {0.0f};
  std::vector<float> g = {0.5f};
  adam_step(cfg, 1, w, m, v, g);
  adam_step(cfg, 2, w, m, v, g);
  // m2 = 0.9*0.05 + 0.1*0.5 = 0.095; bias corr 1-0.81 = 0.19 → m_hat = 0.5
  // v2 = 0.999*2.5e-4 + 0.001*0.25; v_hat = 0.25 → update ≈ 1
  EXPECT_NEAR(m[0], 0.095f, 1e-6f);
  EXPECT_NEAR(w[0], 0.8f, 1e-4f);
}

TEST(Adam, ConstantGradientConvergesTowardSteadyUpdate) {
  AdamConfig cfg;
  cfg.lr = 0.01f;
  std::vector<float> w = {0.0f}, m = {0.0f}, v = {0.0f};
  std::vector<float> g = {1.0f};
  for (int t = 1; t <= 200; ++t) adam_step(cfg, t, w, m, v, g);
  // With constant gradient the step magnitude approaches lr.
  EXPECT_NEAR(w[0], -0.01f * 200.0f, 0.05f);
}

TEST(Adam, GradScaleUnscalesGradient) {
  AdamConfig cfg;
  std::vector<float> w1 = {1.0f}, m1 = {0.0f}, v1 = {0.0f};
  std::vector<float> w2 = {1.0f}, m2 = {0.0f}, v2 = {0.0f};
  std::vector<float> g = {0.25f};
  std::vector<float> g_scaled = {0.25f * 1024.0f};
  adam_step(cfg, 1, w1, m1, v1, g, /*grad_scale=*/1.0f);
  adam_step(cfg, 1, w2, m2, v2, g_scaled, /*grad_scale=*/1024.0f);
  EXPECT_FLOAT_EQ(w1[0], w2[0]);
  EXPECT_FLOAT_EQ(m1[0], m2[0]);
  EXPECT_FLOAT_EQ(v1[0], v2[0]);
}

TEST(Adam, ClipCoefScalesGradient) {
  AdamConfig cfg;
  std::vector<float> w1 = {1.0f}, m1 = {0.0f}, v1 = {0.0f};
  std::vector<float> w2 = {1.0f}, m2 = {0.0f}, v2 = {0.0f};
  std::vector<float> g = {1.0f};
  std::vector<float> g_half = {0.5f};
  adam_step(cfg, 1, w1, m1, v1, g, 1.0f, /*clip_coef=*/0.5f);
  adam_step(cfg, 1, w2, m2, v2, g_half);
  EXPECT_FLOAT_EQ(m1[0], m2[0]);
  EXPECT_FLOAT_EQ(v1[0], v2[0]);
}

TEST(Adam, DecoupledWeightDecayShrinksWeights) {
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.1f;
  cfg.decoupled_weight_decay = true;
  std::vector<float> w = {2.0f}, m = {0.0f}, v = {0.0f};
  std::vector<float> g = {0.0f};  // zero gradient: only decay acts
  adam_step(cfg, 1, w, m, v, g);
  EXPECT_NEAR(w[0], 2.0f - 0.1f * 0.1f * 2.0f, 1e-6f);
}

TEST(Adam, CoupledWeightDecayEntersMoments) {
  AdamConfig cfg;
  cfg.weight_decay = 0.1f;
  cfg.decoupled_weight_decay = false;
  std::vector<float> w = {2.0f}, m = {0.0f}, v = {0.0f};
  std::vector<float> g = {0.0f};
  adam_step(cfg, 1, w, m, v, g);
  EXPECT_NEAR(m[0], 0.1f * 0.1f * 2.0f, 1e-7f);  // decay-derived gradient
}

TEST(Adam, SizeMismatchThrows) {
  AdamConfig cfg;
  std::vector<float> w(4), m(4), v(4), g(3);
  EXPECT_ANY_THROW(adam_step(cfg, 1, w, m, v, g));
}

TEST(ClipCoefficient, Semantics) {
  EXPECT_EQ(clip_coefficient(4.0, 0.0f), 1.0f);      // disabled
  EXPECT_EQ(clip_coefficient(0.25, 1.0f), 1.0f);     // norm 0.5 <= 1
  EXPECT_NEAR(clip_coefficient(4.0, 1.0f), 0.5f, 1e-5f);   // norm 2 → 0.5
  EXPECT_NEAR(clip_coefficient(100.0, 2.0f), 0.2f, 1e-5f); // norm 10 → 0.2
}

// ---------------------------------------------------------------------------
// Loss scaler

TEST(LossScaler, BacksOffOnOverflow) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 1024.0f;
  DynamicLossScaler scaler(cfg);
  EXPECT_EQ(scaler.scale(), 1024.0f);
  EXPECT_TRUE(scaler.update(/*found_overflow=*/true));
  EXPECT_EQ(scaler.scale(), 512.0f);
  EXPECT_EQ(scaler.skipped_steps(), 1);
}

TEST(LossScaler, GrowsAfterInterval) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 256.0f;
  cfg.growth_interval = 3;
  DynamicLossScaler scaler(cfg);
  EXPECT_FALSE(scaler.update(false));
  EXPECT_FALSE(scaler.update(false));
  EXPECT_EQ(scaler.scale(), 256.0f);
  EXPECT_FALSE(scaler.update(false));  // third clean step → grow
  EXPECT_EQ(scaler.scale(), 512.0f);
}

TEST(LossScaler, OverflowResetsGrowthCounter) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 256.0f;
  cfg.growth_interval = 2;
  DynamicLossScaler scaler(cfg);
  scaler.update(false);
  scaler.update(true);  // backoff to 128, counter reset
  EXPECT_EQ(scaler.scale(), 128.0f);
  scaler.update(false);
  EXPECT_EQ(scaler.scale(), 128.0f);  // only 1 clean step since backoff
  scaler.update(false);
  EXPECT_EQ(scaler.scale(), 256.0f);
}

TEST(LossScaler, ClampsToMinAndMax) {
  DynamicLossScaler::Config cfg;
  cfg.init_scale = 2.0f;
  cfg.min_scale = 1.0f;
  cfg.max_scale = 4.0f;
  cfg.growth_interval = 1;
  DynamicLossScaler scaler(cfg);
  scaler.update(true);
  scaler.update(true);
  EXPECT_EQ(scaler.scale(), 1.0f);  // clamped at min
  scaler.update(false);
  scaler.update(false);
  scaler.update(false);
  EXPECT_EQ(scaler.scale(), 4.0f);  // clamped at max
}

TEST(LossScaler, DisabledPinsScaleToOne) {
  DynamicLossScaler::Config cfg;
  cfg.enabled = false;
  DynamicLossScaler scaler(cfg);
  EXPECT_EQ(scaler.scale(), 1.0f);
  EXPECT_FALSE(scaler.update(true));  // never skips
  EXPECT_EQ(scaler.scale(), 1.0f);
}

}  // namespace
}  // namespace zi
