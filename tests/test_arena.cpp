// DeviceArena tests: allocation, fragmentation, coalescing, OOM taxonomy,
// and the Fig. 6b pre-fragmentation protocol.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "mem/arena.hpp"

namespace zi {
namespace {

TEST(Arena, AllocateAndUse) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kReal);
  ArenaBlock b = arena.allocate(1000);
  ASSERT_TRUE(b.valid());
  ASSERT_NE(b.data(), nullptr);
  std::memset(b.data(), 0xAB, b.size());
  EXPECT_GE(b.size(), 1000u);
  EXPECT_EQ(arena.used(), b.size());
}

TEST(Arena, ReleaseReturnsMemory) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kReal);
  {
    ArenaBlock b = arena.allocate(64 * kKiB);
    EXPECT_GT(arena.used(), 0u);
  }
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.largest_free_block(), arena.capacity());
}

TEST(Arena, MoveSemantics) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kReal);
  ArenaBlock a = arena.allocate(128);
  ArenaBlock b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  b.release();
  EXPECT_EQ(arena.used(), 0u);
}

TEST(Arena, CapacityOomThrows) {
  DeviceArena arena("gpu0", 64 * kKiB, DeviceArena::Mode::kReal);
  EXPECT_THROW(arena.allocate(128 * kKiB), OutOfMemoryError);
  EXPECT_EQ(arena.stats().oom_capacity, 1u);
  EXPECT_EQ(arena.stats().oom_contiguity, 0u);
}

TEST(Arena, FragmentationCausesContiguityOom) {
  // Fill with alternating blocks, free every other one: plenty of total
  // free space but no large contiguous span.
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kVirtual);
  std::vector<ArenaBlock> keep;
  std::vector<ArenaBlock> drop;
  for (int i = 0; i < 8; ++i) {
    auto& dst = (i % 2 == 0) ? drop : keep;
    dst.push_back(arena.allocate(128 * kKiB, 1));
  }
  drop.clear();  // free 512 KiB in 4 non-adjacent 128 KiB holes
  EXPECT_EQ(arena.free_bytes(), 512 * kKiB);
  EXPECT_EQ(arena.largest_free_block(), 128 * kKiB);
  EXPECT_THROW(arena.allocate(256 * kKiB, 1), OutOfMemoryError);
  EXPECT_EQ(arena.stats().oom_contiguity, 1u);
}

TEST(Arena, FreeCoalescesNeighbors) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kVirtual);
  ArenaBlock a = arena.allocate(100 * kKiB, 1);
  ArenaBlock b = arena.allocate(100 * kKiB, 1);
  ArenaBlock c = arena.allocate(100 * kKiB, 1);
  b.release();
  a.release();  // must merge with b's hole
  // a+b coalesced: a 200 KiB allocation fits in front of c.
  ArenaBlock big = arena.allocate(200 * kKiB, 1);
  EXPECT_EQ(big.offset(), 0u);
  c.release();
}

TEST(Arena, AlignmentRespected) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kReal);
  ArenaBlock a = arena.allocate(3, 256);
  ArenaBlock b = arena.allocate(5, 4096);
  EXPECT_EQ(a.offset() % 256, 0u);
  EXPECT_EQ(b.offset() % 4096, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 4096, 0u);
}

TEST(Arena, PeakTracksHighWater) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kVirtual);
  {
    ArenaBlock a = arena.allocate(300 * kKiB, 1);
    ArenaBlock b = arena.allocate(300 * kKiB, 1);
  }
  ArenaBlock c = arena.allocate(10 * kKiB, 1);
  EXPECT_EQ(arena.stats().peak_used, 600 * kKiB);
}

TEST(Arena, VirtualModeSupportsHugeCapacity) {
  // 32 GiB "GPU" bookkeeping on a small host — the Fig. 6b vehicle.
  DeviceArena arena("v100", 32 * kGiB, DeviceArena::Mode::kVirtual);
  ArenaBlock big = arena.allocate(30 * kGiB);
  EXPECT_EQ(big.data(), nullptr);
  EXPECT_GE(big.size(), 30 * kGiB);
  EXPECT_THROW(arena.allocate(4 * kGiB), OutOfMemoryError);
}

TEST(Arena, PrefragmentEnforcesMaxContiguousChunk) {
  // The paper's protocol: pre-fragment into 2 GB chunks so any allocation
  // larger than 2 GB fails even though total memory is plentiful.
  DeviceArena arena("v100", 32 * kGiB, DeviceArena::Mode::kVirtual);
  arena.prefragment(2 * kGiB);
  EXPECT_THROW(arena.allocate(2 * kGiB + kMiB), OutOfMemoryError);
  EXPECT_EQ(arena.stats().oom_contiguity, 1u);
  // At-most-chunk-sized allocations succeed, and many of them fit.
  std::vector<ArenaBlock> blocks;
  for (int i = 0; i < 15; ++i) blocks.push_back(arena.allocate(2 * kGiB, 1));
}

TEST(Arena, PrefragmentRequiresEmptyArena) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kVirtual);
  ArenaBlock a = arena.allocate(100);
  EXPECT_THROW(arena.prefragment(64 * kKiB), Error);
}

TEST(Arena, StatsCountAllocsAndFrees) {
  DeviceArena arena("gpu0", 1 * kMiB, DeviceArena::Mode::kVirtual);
  {
    ArenaBlock a = arena.allocate(100);
    ArenaBlock b = arena.allocate(100);
  }
  const auto s = arena.stats();
  EXPECT_EQ(s.num_allocs, 2u);
  EXPECT_EQ(s.num_frees, 2u);
  EXPECT_EQ(s.live_blocks, 0u);
}

TEST(Arena, ExhaustiveFillThenFullReuse) {
  // Property: allocating until OOM, freeing everything, and re-allocating
  // works — the free list coalesces back to one span.
  DeviceArena arena("gpu0", 256 * kKiB, DeviceArena::Mode::kVirtual);
  std::vector<ArenaBlock> blocks;
  try {
    for (;;) blocks.push_back(arena.allocate(10 * kKiB, 1));
  } catch (const OutOfMemoryError&) {
  }
  EXPECT_GE(blocks.size(), 25u);
  blocks.clear();
  EXPECT_EQ(arena.largest_free_block(), arena.capacity());
  ArenaBlock all = arena.allocate(256 * kKiB, 1);
  EXPECT_TRUE(all.valid());
}

}  // namespace
}  // namespace zi
