// Unified data-movement layer tests (src/move).
//
// Four layers under test:
//   1. the Route vocabulary — names, tier mapping, async classification;
//   2. DataMover — staging (pinned-or-heap single decision point), the six
//      routes' counters, async NVMe handles and their wait/latency
//      accounting;
//   3. DoubleBufferPipeline — the reuse-safety ordering invariant (a buffer
//      receives item c+1 only after its item c-1 write-backs drained) and
//      quiescence on exceptional exits;
//   4. fault interaction — aio_read / pinned_acquire faults under the new
//      layer must leak no staging lease and recover bit-exact, and
//      TierBuffer's slice validation must throw typed BoundsError (incl.
//      overflow-wrapping offsets) instead of corrupting the arena.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "core/tier_buffer.hpp"
#include "move/data_mover.hpp"
#include "move/pipeline.hpp"
#include "move/staging.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

class DataMoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().clear();
    dir_ = fs::temp_directory_path() /
           ("zi_move_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + seed * 7 + 3) & 0xff);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Route vocabulary.

TEST(Route, NamesAndTierMapping) {
  EXPECT_STREQ(route_name(Route::kGpuFetch), "gpu>host");
  EXPECT_STREQ(route_name(Route::kGpuSpill), "host>gpu");
  EXPECT_STREQ(route_name(Route::kCpuFetch), "cpu>host");
  EXPECT_STREQ(route_name(Route::kCpuSpill), "host>cpu");
  EXPECT_STREQ(route_name(Route::kNvmeFetch), "nvme>host");
  EXPECT_STREQ(route_name(Route::kNvmeSpill), "host>nvme");

  EXPECT_EQ(fetch_route(Tier::kGpu), Route::kGpuFetch);
  EXPECT_EQ(fetch_route(Tier::kCpu), Route::kCpuFetch);
  EXPECT_EQ(fetch_route(Tier::kNvme), Route::kNvmeFetch);
  EXPECT_EQ(spill_route(Tier::kGpu), Route::kGpuSpill);
  EXPECT_EQ(spill_route(Tier::kCpu), Route::kCpuSpill);
  EXPECT_EQ(spill_route(Tier::kNvme), Route::kNvmeSpill);
}

TEST(Route, OnlyNvmeRoutesAreAsync) {
  EXPECT_FALSE(route_is_async(Route::kGpuFetch));
  EXPECT_FALSE(route_is_async(Route::kGpuSpill));
  EXPECT_FALSE(route_is_async(Route::kCpuFetch));
  EXPECT_FALSE(route_is_async(Route::kCpuSpill));
  EXPECT_TRUE(route_is_async(Route::kNvmeFetch));
  EXPECT_TRUE(route_is_async(Route::kNvmeSpill));
}

// ---------------------------------------------------------------------------
// Staging: the pinned-or-heap decision and lease lifecycle.

TEST_F(DataMoverTest, StagePrefersPinnedAndFallsBackToHeap) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, /*pinned_bytes=*/4096,
                    /*pinned_count=*/2);
  DataMover& mover = res.mover();

  // Fits and free → pinned (the window is the requested size, not the
  // buffer's full capacity).
  StagingLease a = mover.stage(1000);
  EXPECT_TRUE(a.pinned());
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.bytes().size(), 1000u);

  // Too large for any pool buffer → heap, pool untouched.
  StagingLease big = mover.stage(8192);
  EXPECT_FALSE(big.pinned());
  EXPECT_EQ(big.bytes().size(), 8192u);
  EXPECT_EQ(res.pinned().available(), 1u);

  // Pool exhausted → heap.
  StagingLease b = mover.stage(4096);
  EXPECT_TRUE(b.pinned());
  StagingLease c = mover.stage(16);
  EXPECT_FALSE(c.pinned());

  const DataMover::Stats s = mover.stats();
  EXPECT_EQ(s.staged_pinned, 2u);
  EXPECT_EQ(s.staged_heap, 2u);

  // Dropping leases returns pinned buffers to the pool.
  a.release();
  EXPECT_EQ(res.pinned().available(), 1u);
  b = StagingLease();
  EXPECT_EQ(res.pinned().available(), 2u);
}

// ---------------------------------------------------------------------------
// Routes move bytes and count them.

TEST_F(DataMoverTest, NvmeRoundtripThroughAsyncHandles) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2);
  DataMover& mover = res.mover();

  const auto src = pattern_bytes(6000, 1);
  Extent e = res.nvme().allocate(src.size());

  TransferHandle w = mover.spill_nvme(e, src);
  EXPECT_EQ(w.route(), Route::kNvmeSpill);
  EXPECT_EQ(w.bytes(), src.size());
  w.wait();
  EXPECT_TRUE(w.ok());
  EXPECT_EQ(w.error_code(), 0);

  std::vector<std::byte> back(src.size());
  TransferHandle r = mover.fetch_nvme(e, back);
  r.wait();
  EXPECT_TRUE(back == src);

  // Sync helpers land on the same route counters.
  std::vector<std::byte> back2(src.size());
  mover.fetch_nvme_sync(e, back2);
  EXPECT_TRUE(back2 == src);

  const DataMover::Stats s = mover.stats();
  EXPECT_EQ(s.route(Route::kNvmeSpill).bytes, src.size());
  EXPECT_EQ(s.route(Route::kNvmeSpill).transfers, 1u);
  EXPECT_EQ(s.route(Route::kNvmeFetch).bytes, 2 * src.size());
  EXPECT_EQ(s.route(Route::kNvmeFetch).transfers, 2u);
  EXPECT_EQ(s.total_transfers(), 3u);
  EXPECT_GE(s.total_seconds(), 0.0);
}

TEST_F(DataMoverTest, MemcpyRoutesAreCountedPerRoute) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2);
  DataMover& mover = res.mover();

  const auto src = pattern_bytes(512, 2);
  std::vector<std::byte> tier(512), host(512);
  mover.spill_copy(Route::kCpuSpill, tier.data(), src);
  mover.fetch_copy(Route::kCpuFetch, host, tier.data());
  EXPECT_TRUE(host == src);

  std::vector<std::byte> gpu(256);
  mover.spill_copy(Route::kGpuSpill, gpu.data(),
                   std::span<const std::byte>(src.data(), 256));

  const DataMover::Stats s = mover.stats();
  EXPECT_EQ(s.route(Route::kCpuSpill).bytes, 512u);
  EXPECT_EQ(s.route(Route::kCpuFetch).bytes, 512u);
  EXPECT_EQ(s.route(Route::kGpuSpill).bytes, 256u);
  EXPECT_EQ(s.total_bytes(), 512u + 512u + 256u);
}

TEST(TransferHandleT, DefaultHandleIsTriviallyComplete) {
  TransferHandle h;
  EXPECT_TRUE(h.done());
  EXPECT_TRUE(h.ok());
  EXPECT_EQ(h.error_code(), 0);
  h.wait();  // no-op, must not throw
  h.wait();  // wait() is idempotent

  TransferHandle moved = std::move(h);
  moved.wait();
}

// ---------------------------------------------------------------------------
// TierBuffer slice validation: typed BoundsError instead of corruption.

TEST_F(DataMoverTest, TierBufferRejectsOutOfBoundsSlices) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2);

  const auto src = pattern_bytes(64, 3);
  std::vector<std::byte> dst(64);
  for (const Tier tier : {Tier::kCpu, Tier::kNvme}) {
    TierBuffer buf(res, tier, 256);
    // In-bounds at the very end is fine.
    buf.store(src, 192);
    buf.load(dst, 192);
    EXPECT_TRUE(dst == src);

    // One byte past the end, offset past the end, and an offset chosen so
    // that offset + size wraps std::uint64_t back in-bounds — all typed.
    EXPECT_THROW(buf.store(src, 193), BoundsError);
    EXPECT_THROW(buf.load(dst, 300), BoundsError);
    const std::uint64_t wrap = ~std::uint64_t{0} - 16;  // offset+64 wraps
    EXPECT_THROW(buf.store(src, wrap), BoundsError);
    EXPECT_THROW(buf.load(dst, wrap), BoundsError);
    EXPECT_THROW(buf.store_async(src, 256), BoundsError);
    EXPECT_THROW(buf.load_async(dst, 256), BoundsError);
    // BoundsError is an Error subtype: existing catch sites still work.
    EXPECT_THROW(buf.load(dst, 300), Error);
  }
}

// ---------------------------------------------------------------------------
// DoubleBufferPipeline: reuse safety and quiescence.

struct ProbeBuf {
  std::int64_t loaded_item = -1;   // item whose load was issued into us
  std::int64_t pending_store = -1; // item whose store is still in flight
};

TEST(DoubleBufferPipelineT, StoresDrainBeforeBufferReuse) {
  DoubleBufferPipeline<ProbeBuf> pipe;
  std::vector<std::string> log;
  const std::int64_t n = 5;

  pipe.run(
      n, /*overlap=*/true,
      [&](std::int64_t c, ProbeBuf& b) {
        // Reuse safety: the pipeline must have drained this buffer's
        // previous write-back before overwriting it with item c.
        EXPECT_EQ(b.pending_store, -1)
            << "issue_load(" << c << ") while item " << b.pending_store
            << "'s store is still pending";
        b.loaded_item = c;
        log.push_back("load:" + std::to_string(c));
      },
      [&](ProbeBuf& b) {
        if (b.loaded_item >= 0) {
          log.push_back("wait_load:" + std::to_string(b.loaded_item));
        }
      },
      [&](std::int64_t c, ProbeBuf& b) {
        EXPECT_EQ(b.loaded_item, c);
        b.pending_store = c;
        log.push_back("compute:" + std::to_string(c));
      },
      [&](ProbeBuf& b) {
        if (b.pending_store >= 0) {
          log.push_back("wait_store:" + std::to_string(b.pending_store));
          b.pending_store = -1;
        }
      });

  // Every item computed exactly once, in order, and every store drained.
  for (std::int64_t c = 0; c < n; ++c) {
    EXPECT_EQ(std::count(log.begin(), log.end(),
                         "compute:" + std::to_string(c)),
              1);
  }
  EXPECT_EQ(pipe.buffer(0).pending_store, -1);
  EXPECT_EQ(pipe.buffer(1).pending_store, -1);
  // Overlap really happened: item 1's load was issued before item 0's
  // compute finished consuming the pipeline head.
  const auto pos = [&](const std::string& s) {
    return std::find(log.begin(), log.end(), s) - log.begin();
  };
  EXPECT_LT(pos("load:1"), pos("compute:0"));
}

TEST(DoubleBufferPipelineT, SequentialWhenOverlapDisabled) {
  DoubleBufferPipeline<ProbeBuf> pipe;
  std::vector<std::string> log;
  pipe.run(
      3, /*overlap=*/false,
      [&](std::int64_t c, ProbeBuf& b) {
        b.loaded_item = c;
        log.push_back("load:" + std::to_string(c));
      },
      [&](ProbeBuf&) {},
      [&](std::int64_t c, ProbeBuf&) {
        log.push_back("compute:" + std::to_string(c));
      },
      [&](ProbeBuf& b) { b.pending_store = -1; });
  // Strict load → compute → load → compute order: no lookahead.
  const std::vector<std::string> want = {"load:0", "compute:0", "load:1",
                                         "compute:1", "load:2", "compute:2"};
  EXPECT_EQ(log, want);
}

TEST(DoubleBufferPipelineT, QuiescesAllBuffersWhenComputeThrows) {
  DoubleBufferPipeline<ProbeBuf> pipe;
  int waits_after_throw = 0;
  bool thrown = false;
  EXPECT_THROW(
      pipe.run(
          4, /*overlap=*/true,
          [&](std::int64_t c, ProbeBuf& b) { b.loaded_item = c; },
          [&](ProbeBuf&) {
            if (thrown) ++waits_after_throw;
          },
          [&](std::int64_t c, ProbeBuf& b) {
            b.pending_store = c;
            if (c == 1) {
              thrown = true;
              throw std::runtime_error("compute failed");
            }
          },
          [&](ProbeBuf& b) {
            if (thrown) ++waits_after_throw;
            b.pending_store = -1;
          }),
      std::runtime_error);
  // The quiescence path waited out both buffers' loads AND stores.
  EXPECT_EQ(waits_after_throw, 4);
  EXPECT_EQ(pipe.buffer(0).pending_store, -1);
  EXPECT_EQ(pipe.buffer(1).pending_store, -1);
}

// ---------------------------------------------------------------------------
// Fault interaction: no staged lease leaks, bit-exact recovery.

TEST_F(DataMoverTest, PinnedAcquireFaultFallsBackToHeapWithoutLeaking) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2);
  DataMover& mover = res.mover();
  const std::size_t pool_total = res.pinned().num_buffers();

  FaultInjector::instance().configure("pinned_acquire:error,after=0,count=2");
  {
    StagingLease lease = mover.stage(1024);
    EXPECT_FALSE(lease.pinned());  // fault forced the heap fallback
    const auto src = pattern_bytes(1024, 4);
    std::memcpy(lease.bytes().data(), src.data(), src.size());
    Extent e = res.nvme().allocate(1024);
    mover.spill_nvme(e, lease.bytes()).wait();
    std::vector<std::byte> back(1024);
    mover.fetch_nvme_sync(e, back);
    EXPECT_TRUE(std::equal(back.begin(), back.end(), src.begin()));
  }
  FaultInjector::instance().clear();
  EXPECT_EQ(res.pinned().available(), pool_total);
  EXPECT_GE(mover.stats().staged_heap, 1u);
}

TEST_F(DataMoverTest, TransientReadFaultsAreRetriedBitExact) {
  AioConfig acfg;
  acfg.max_retries = 4;
  acfg.retry_backoff_us = 1;
  AioEngine aio(acfg);
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2);
  DataMover& mover = res.mover();

  const auto src = pattern_bytes(4096, 5);
  Extent e = res.nvme().allocate(src.size());
  mover.spill_nvme_sync(e, src);

  // Two transient EIOs: both are absorbed by the engine's retry loop under
  // the mover, and the payload comes back bit-exact.
  FaultInjector::instance().configure("aio_read:error,after=0,count=2");
  StagingLease lease = mover.stage(src.size());
  EXPECT_TRUE(lease.pinned());
  TransferHandle h = mover.fetch_nvme(e, lease.bytes());
  h.wait();
  EXPECT_TRUE(h.ok());
  EXPECT_TRUE(std::equal(src.begin(), src.end(), lease.bytes().begin()));
  FaultInjector::instance().clear();
}

TEST_F(DataMoverTest, ExhaustedReadFaultThrowsAndLeaksNoLease) {
  AioConfig acfg;
  acfg.max_retries = 1;
  acfg.retry_backoff_us = 1;
  AioEngine aio(acfg);
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2);
  DataMover& mover = res.mover();
  const std::size_t pool_total = res.pinned().num_buffers();

  const auto src = pattern_bytes(2048, 6);
  Extent e = res.nvme().allocate(src.size());
  mover.spill_nvme_sync(e, src);

  FaultInjector::instance().configure("aio_read:error,after=0");
  {
    StagingLease lease = mover.stage(src.size());
    TransferHandle h = mover.fetch_nvme(e, lease.bytes());
    EXPECT_THROW(h.wait(), RetriesExhaustedError);
    EXPECT_TRUE(h.done());
    EXPECT_FALSE(h.ok());
    EXPECT_NE(h.error_code(), 0);
    // The caller's drop path: destroying lease + handle after the failed
    // wait must return the pinned buffer.
  }
  EXPECT_EQ(res.pinned().available(), pool_total);

  // Fault lifted: the same extent re-reads clean and bit-exact.
  FaultInjector::instance().clear();
  std::vector<std::byte> back(src.size());
  mover.fetch_nvme(e, back).wait();
  EXPECT_TRUE(back == src);
  EXPECT_EQ(res.pinned().available(), pool_total);
}

}  // namespace
}  // namespace zi
