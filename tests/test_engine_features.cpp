// Tests for engine extensions: gradient accumulation, universal
// checkpointing (cross-strategy save/restore), eval mode, and the
// small-parameter persistence threshold.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/engine.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig tiny_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  return cfg;
}

void make_batch(int rank, int salt, const GptConfig& cfg, int batch,
                std::vector<std::int32_t>& tokens,
                std::vector<std::int32_t>& targets) {
  const std::int64_t n = batch * cfg.seq;
  tokens.resize(static_cast<std::size_t>(n));
  targets.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t v = (rank * 31 + salt * 7 + i * 3) % (cfg.vocab - 1);
    tokens[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(v);
    targets[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>((v * 3 + 3) % (cfg.vocab - 1));
  }
}

class EngineFeatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_feat_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Gradient accumulation

// Accumulated micro-batches remain an exact transformation: DDP and
// ZeRO-Infinity-NVMe produce bit-identical trajectories when both
// accumulate the same k micro-batches.
TEST_F(EngineFeatureTest, AccumulationPreservesStrategyExactness) {
  const GptConfig mc = tiny_model();
  constexpr int kWorld = 2;
  constexpr int kSteps = 3;
  constexpr int kMicros = 3;

  auto run = [&](EngineConfig cfg, const fs::path& d) {
    cfg.nvme_dir = d.string();
    std::vector<float> losses;
    AioEngine aio;
    run_ranks(kWorld, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::vector<std::int32_t>> toks(kMicros), tgts(kMicros);
      for (int s = 0; s < kSteps; ++s) {
        std::vector<ZeroEngine::MicroBatch> micros;
        for (int m = 0; m < kMicros; ++m) {
          make_batch(comm.rank(), s * kMicros + m, mc, 1,
                     toks[static_cast<std::size_t>(m)],
                     tgts[static_cast<std::size_t>(m)]);
          micros.push_back({toks[static_cast<std::size_t>(m)],
                            tgts[static_cast<std::size_t>(m)]});
        }
        const auto st = engine.train_step(micros);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
      }
    });
    return losses;
  };

  const auto ddp = run(preset_data_parallel(), dir_ / "ddp");
  const auto inf = run(preset_zero_infinity_nvme(), dir_ / "inf");
  ASSERT_EQ(ddp.size(), inf.size());
  for (std::size_t i = 0; i < ddp.size(); ++i) {
    EXPECT_EQ(ddp[i], inf[i]) << "step " << i;
  }
}

// k accumulated micro-batches of size b approximate one batch of size k·b
// (same data): trajectories stay close (they differ only in fp16 rounding
// points of the gradient reduction).
TEST_F(EngineFeatureTest, AccumulationApproximatesLargeBatch) {
  const GptConfig mc = tiny_model();
  EngineConfig cfg = preset_zero3();
  cfg.adam.lr = 5e-3f;
  cfg.loss_scale.init_scale = 1024.0f;
  cfg.nvme_dir = (dir_ / "a").string();

  std::vector<float> accumulated, large;
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    // Run A: 2 micro-batches of batch 1.
    {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> t0, g0, t1, g1;
      make_batch(comm.rank(), 0, mc, 1, t0, g0);
      make_batch(comm.rank(), 1, mc, 1, t1, g1);
      const ZeroEngine::MicroBatch micros[] = {{t0, g0}, {t1, g1}};
      for (int s = 0; s < 4; ++s) {
        const auto st = engine.train_step(micros);
        if (comm.rank() == 0) accumulated.push_back(st.global_loss);
      }
    }
    comm.barrier();
    // Run B: one batch of 2 containing the same sequences.
    {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> t0, g0, t1, g1;
      make_batch(comm.rank(), 0, mc, 1, t0, g0);
      make_batch(comm.rank(), 1, mc, 1, t1, g1);
      std::vector<std::int32_t> tokens(t0), targets(g0);
      tokens.insert(tokens.end(), t1.begin(), t1.end());
      targets.insert(targets.end(), g1.begin(), g1.end());
      for (int s = 0; s < 4; ++s) {
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) large.push_back(st.global_loss);
      }
    }
  });
  ASSERT_EQ(accumulated.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(accumulated[i], large[i], 0.01f) << i;
  }
}

// ---------------------------------------------------------------------------
// Universal checkpointing

// THE cross-strategy property: train under DDP, checkpoint, restore into a
// ZeRO-Infinity-NVMe engine with different placement, and the continued
// trajectory is IDENTICAL to never having stopped.
TEST_F(EngineFeatureTest, CheckpointRoundTripsAcrossStrategies) {
  const GptConfig mc = tiny_model();
  constexpr int kWorld = 2;
  const std::string ckpt = (dir_ / "ckpt.bin").string();

  auto step_loss = [&](ZeroEngine& engine, Communicator& comm, int salt) {
    std::vector<std::int32_t> tokens, targets;
    make_batch(comm.rank(), salt, mc, 2, tokens, targets);
    return engine.train_step(tokens, targets).global_loss;
  };

  // Reference: 6 uninterrupted DDP steps.
  std::vector<float> reference;
  {
    EngineConfig cfg = preset_data_parallel();
    cfg.nvme_dir = (dir_ / "ref").string();
    AioEngine aio;
    run_ranks(kWorld, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      for (int s = 0; s < 6; ++s) {
        const float l = step_loss(engine, comm, s);
        if (comm.rank() == 0) reference.push_back(l);
      }
    });
  }

  // Interrupted: 3 DDP steps, save, restore into ZeRO-Inf-NVMe, 3 more.
  std::vector<float> resumed;
  {
    EngineConfig cfg = preset_data_parallel();
    cfg.nvme_dir = (dir_ / "phase1").string();
    AioEngine aio;
    run_ranks(kWorld, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      for (int s = 0; s < 3; ++s) {
        const float l = step_loss(engine, comm, s);
        if (comm.rank() == 0) resumed.push_back(l);
      }
      engine.save_checkpoint(ckpt);
    });
  }
  {
    EngineConfig cfg = preset_zero_infinity_nvme();
    cfg.nvme_dir = (dir_ / "phase2").string();
    AioEngine aio;
    run_ranks(kWorld, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      engine.load_checkpoint(ckpt);
      EXPECT_EQ(engine.steps(), 3);
      for (int s = 3; s < 6; ++s) {
        const float l = step_loss(engine, comm, s);
        if (comm.rank() == 0) resumed.push_back(l);
      }
    });
  }

  ASSERT_EQ(reference.size(), 6u);
  ASSERT_EQ(resumed.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(resumed[i], reference[i]) << "step " << i;
  }
}

TEST_F(EngineFeatureTest, CheckpointSurvivesWorldSizeChange) {
  const GptConfig mc = tiny_model();
  const std::string ckpt = (dir_ / "w.bin").string();
  // Save from a 3-rank ZeRO-3 run...
  {
    EngineConfig cfg = preset_zero3();
    cfg.nvme_dir = (dir_ / "w3").string();
    AioEngine aio;
    run_ranks(3, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens, targets;
      make_batch(comm.rank(), 0, mc, 1, tokens, targets);
      engine.train_step(tokens, targets);
      engine.save_checkpoint(ckpt);
    });
  }
  // ...restore into a single-rank Inf-CPU engine and keep training.
  {
    EngineConfig cfg = preset_zero_infinity_cpu();
    cfg.nvme_dir = (dir_ / "w1").string();
    AioEngine aio;
    run_ranks(1, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      engine.load_checkpoint(ckpt);
      EXPECT_EQ(engine.steps(), 1);
      std::vector<std::int32_t> tokens, targets;
      make_batch(0, 1, mc, 1, tokens, targets);
      const auto st = engine.train_step(tokens, targets);
      EXPECT_TRUE(std::isfinite(st.global_loss));
    });
  }
}

TEST_F(EngineFeatureTest, CheckpointRejectsGarbage) {
  const GptConfig mc = tiny_model();
  const std::string bad = (dir_ / "bad.bin").string();
  {
    std::vector<std::byte> junk(64, std::byte{0x42});
    AioEngine aio;
    AioFile* f = aio.open(bad);
    aio.write(f, 0, junk);
  }
  EngineConfig cfg = preset_zero3();
  cfg.nvme_dir = (dir_ / "g").string();
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    EXPECT_THROW(engine.load_checkpoint(bad), Error);
  });
}

// ---------------------------------------------------------------------------
// Eval mode

TEST_F(EngineFeatureTest, EvalDoesNotPerturbTraining) {
  const GptConfig mc = tiny_model();
  EngineConfig cfg = preset_zero_infinity_nvme();

  auto run = [&](bool with_evals, const fs::path& d) {
    EngineConfig c = cfg;
    c.nvme_dir = d.string();
    std::vector<float> losses;
    std::uint64_t invalidations = 0;
    AioEngine aio;
    run_ranks(2, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, c);
      std::vector<std::int32_t> tokens, targets, etok, etgt;
      make_batch(comm.rank(), 99, mc, 1, etok, etgt);
      for (int s = 0; s < 4; ++s) {
        make_batch(comm.rank(), s, mc, 1, tokens, targets);
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
        if (with_evals) {
          const float e = engine.eval_loss(etok, etgt);
          EXPECT_TRUE(std::isfinite(e));
        }
      }
      if (comm.rank() == 0) {
        invalidations = engine.coordinator()->stats().trace_invalidations;
      }
    });
    EXPECT_EQ(invalidations, 0u) << "eval must not disturb the trace";
    return losses;
  };

  const auto plain = run(false, dir_ / "plain");
  const auto with_evals = run(true, dir_ / "eval");
  ASSERT_EQ(plain.size(), with_evals.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], with_evals[i]) << i;
  }
}

TEST_F(EngineFeatureTest, EvalLossMatchesTrainLossBeforeUpdate) {
  const GptConfig mc = tiny_model();
  EngineConfig cfg = preset_zero_infinity_cpu();
  cfg.nvme_dir = (dir_ / "e").string();
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    make_batch(comm.rank(), 0, mc, 2, tokens, targets);
    // Evaluating the fresh model must give the same loss the first
    // training step reports (the step's loss is pre-update).
    const float eval = engine.eval_loss(tokens, targets);
    const auto st = engine.train_step(tokens, targets);
    EXPECT_EQ(eval, st.global_loss);
    // After the update the loss moved.
    const float after = engine.eval_loss(tokens, targets);
    EXPECT_NE(after, eval);
  });
}

// ---------------------------------------------------------------------------
// Persistence threshold

TEST_F(EngineFeatureTest, PersistenceReducesFetchesWithoutChangingMath) {
  const GptConfig mc = tiny_model();

  auto run = [&](std::int64_t threshold, const fs::path& d,
                 std::uint64_t& fetches) {
    EngineConfig cfg = preset_zero_infinity_cpu();
    cfg.persistence_threshold_elems = threshold;
    cfg.nvme_dir = d.string();
    std::vector<float> losses;
    AioEngine aio;
    run_ranks(2, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens, targets;
      for (int s = 0; s < 4; ++s) {
        make_batch(comm.rank(), s, mc, 1, tokens, targets);
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
      }
      if (comm.rank() == 0) {
        fetches = engine.coordinator()->stats().fetches;
      }
    });
    return losses;
  };

  std::uint64_t fetches_off = 0, fetches_on = 0;
  const auto off = run(0, dir_ / "off", fetches_off);
  // Threshold covers layernorm gains/biases (hidden = 16 elements).
  const auto on = run(mc.hidden, dir_ / "on", fetches_on);

  EXPECT_LT(fetches_on, fetches_off);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << i;  // exactness preserved
  }
}

// ---------------------------------------------------------------------------
// Broadcast-based retrieval (the ZeRO/ZeRO-Offload baseline of Sec. 6.1)

TEST_F(EngineFeatureTest, BroadcastRetrievalIsExactButOwnerBound) {
  const GptConfig mc = tiny_model();
  constexpr int kWorld = 3;

  auto run = [&](bool bandwidth_centric, const fs::path& d,
                 ParamCoordinator::Stats& stats) {
    EngineConfig cfg = preset_zero3();
    cfg.param_placement = Placement::kCpu;  // make the retrieval path real
    cfg.bandwidth_centric = bandwidth_centric;
    cfg.nvme_dir = d.string();
    std::vector<float> losses;
    AioEngine aio;
    run_ranks(kWorld, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens, targets;
      for (int s = 0; s < 4; ++s) {
        make_batch(comm.rank(), s, mc, 1, tokens, targets);
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
      }
      if (comm.rank() == 0) stats = engine.coordinator()->stats();
    });
    return losses;
  };

  ParamCoordinator::Stats ag_stats, bc_stats;
  const auto allgather = run(true, dir_ / "ag", ag_stats);
  const auto broadcast = run(false, dir_ / "bc", bc_stats);

  // Same values — bandwidth-centric partitioning is a pure data-movement
  // transformation.
  ASSERT_EQ(allgather.size(), broadcast.size());
  for (std::size_t i = 0; i < allgather.size(); ++i) {
    EXPECT_EQ(allgather[i], broadcast[i]) << i;
  }
  // But the traffic pattern differs: broadcast moves whole parameters
  // through single owners, allgather moves 1/dp slices per rank.
  EXPECT_GT(ag_stats.allgather_fp16_elems, 0u);
  EXPECT_EQ(ag_stats.broadcast_fp16_elems, 0u);
  EXPECT_EQ(bc_stats.allgather_fp16_elems, 0u);
  EXPECT_GT(bc_stats.broadcast_fp16_elems, 0u);
  // Per gather, broadcast traffic ≈ dp × the per-rank allgather volume.
  EXPECT_GT(bc_stats.broadcast_fp16_elems,
            ag_stats.allgather_fp16_elems * 2);
}

TEST_F(EngineFeatureTest, BroadcastModeSupportsCheckpointAndPrefetch) {
  const GptConfig mc = tiny_model();
  EngineConfig cfg = preset_zero3();
  cfg.param_placement = Placement::kCpu;
  cfg.bandwidth_centric = false;
  cfg.nvme_dir = (dir_ / "bc2").string();
  const std::string ckpt = (dir_ / "bc.ckpt").string();

  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    make_batch(comm.rank(), 0, mc, 1, tokens, targets);
    float last = 0;
    for (int s = 0; s < 3; ++s) last = engine.train_step(tokens, targets).global_loss;
    engine.save_checkpoint(ckpt);
    // Owner-side prefetching engaged after the first iteration.
    EXPECT_GT(engine.coordinator()->stats().prefetch_hits, 0u);
    // Reload restores the exact state: an eval gives the same loss as a
    // fresh engine that loads the checkpoint.
    const float here = engine.eval_loss(tokens, targets);
    Gpt model2(mc);
    EngineConfig cfg2 = preset_zero_infinity_cpu();
    cfg2.nvme_dir = cfg.nvme_dir + "/reload";
    ZeroEngine engine2(model2, comm, aio, cfg2);
    engine2.load_checkpoint(ckpt);
    EXPECT_EQ(engine2.eval_loss(tokens, targets), here);
    (void)last;
  });
}

TEST_F(EngineFeatureTest, BroadcastModeRejectsNvmeOptimizer) {
  const GptConfig mc = tiny_model();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.bandwidth_centric = false;
  cfg.nvme_dir = (dir_ / "bad").string();
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(mc);
    EXPECT_THROW(ZeroEngine(model, comm, aio, cfg), Error);
  });
}

}  // namespace
}  // namespace zi
