// Configuration-space fuzz: random valid (stage × placements × knobs)
// combinations must all (a) train without errors and (b) stay EXACT —
// bit-identical to the DDP reference on the same data. Catches interaction
// bugs between features no hand-written matrix would enumerate.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig tiny_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  return cfg;
}

EngineConfig random_config(Rng& rng) {
  EngineConfig cfg;
  const int stage = static_cast<int>(rng.next_below(4));
  cfg.stage = static_cast<ZeroStage>(stage);
  auto tier = [&](bool allow_nvme) {
    const auto pick = rng.next_below(allow_nvme ? 3 : 2);
    return static_cast<Placement>(pick);
  };
  if (cfg.stage == ZeroStage::kStage3) {
    cfg.param_placement = tier(true);
    cfg.optimizer_placement = tier(true);
    cfg.grad_placement = tier(true);
    cfg.bandwidth_centric = rng.next_below(4) != 0;  // mostly allgather
    if (!cfg.bandwidth_centric &&
        cfg.optimizer_placement == Placement::kNvme) {
      cfg.optimizer_placement = Placement::kCpu;  // unsupported combo
    }
    cfg.prefetch_depth = static_cast<int>(rng.next_below(5));
    cfg.persistence_threshold_elems =
        static_cast<std::int64_t>(rng.next_below(3)) * 16;
    cfg.optimizer_chunk_elems = 32 << rng.next_below(6);
  } else {
    // Stages 0-2: params stay on GPU; optimizer GPU or CPU.
    cfg.optimizer_placement = tier(false);
    cfg.grad_placement = tier(false);
  }
  cfg.activation_placement = tier(cfg.stage == ZeroStage::kStage3);
  if (!cfg.params_partitioned() &&
      cfg.activation_placement == Placement::kNvme) {
    cfg.activation_placement = Placement::kCpu;
  }
  cfg.overlap_transfers = rng.next_below(2) == 0;
  cfg.loss_scale.init_scale = 1024.0f;
  return cfg;
}

class ConfigFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzzTest, RandomConfigMatchesDdp) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed, 99);
  const GptConfig mc = tiny_model();
  const fs::path dir =
      fs::temp_directory_path() /
      ("zi_fuzz_" + std::to_string(::getpid()) + "_" + std::to_string(seed));
  fs::create_directories(dir);
  constexpr int kWorld = 2;
  constexpr int kSteps = 3;

  auto run = [&](EngineConfig cfg, const fs::path& d) {
    cfg.nvme_dir = d.string();
    std::vector<float> losses;
    AioEngine aio;
    run_ranks(kWorld, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens(2 * static_cast<std::size_t>(mc.seq));
      std::vector<std::int32_t> targets(tokens.size());
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        tokens[i] = static_cast<std::int32_t>((comm.rank() * 3 + i) % 31);
        targets[i] = static_cast<std::int32_t>((tokens[i] + 1) % 31);
      }
      for (int s = 0; s < kSteps; ++s) {
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
      }
    });
    return losses;
  };

  EngineConfig ddp;
  ddp.stage = ZeroStage::kNone;
  ddp.loss_scale.init_scale = 1024.0f;
  const auto reference = run(ddp, dir / "ref");

  const EngineConfig candidate = random_config(rng);
  SCOPED_TRACE("seed " + std::to_string(seed) + ": stage " +
               std::to_string(static_cast<int>(candidate.stage)) + " param " +
               tier_name(candidate.param_placement) + " opt " +
               tier_name(candidate.optimizer_placement) + " grad " +
               tier_name(candidate.grad_placement) + " act " +
               tier_name(candidate.activation_placement) +
               (candidate.bandwidth_centric ? "" : " broadcast") +
               (candidate.overlap_transfers ? " overlap" : " sync"));
  const auto result = run(candidate, dir / "cand");

  ASSERT_EQ(result.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result[i]));
    EXPECT_EQ(result[i], reference[i]) << "step " << i;
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace zi
