// Architecture-independence tests: the MlpClassifier (no attention, no
// tying, no sequence structure) trains under the same engine and the same
// exactness guarantees as the paper's GPT workload — the "arbitrary model
// architectures" claim of Sec. 5.3 / 7.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/engine.hpp"
#include "model/local_store.hpp"
#include "model/gpt.hpp"
#include "model/mlp_net.hpp"
#include "optim/adam.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

MlpNetConfig tiny_net() {
  MlpNetConfig cfg;
  cfg.num_features = 32;
  cfg.features_per_example = 4;
  cfg.hidden = 16;
  cfg.depth = 2;
  cfg.num_classes = 5;
  return cfg;
}

void make_batch(int rank, int salt, const MlpNetConfig& cfg, int batch,
                std::vector<std::int32_t>& inputs,
                std::vector<std::int32_t>& targets) {
  inputs.resize(static_cast<std::size_t>(batch * cfg.features_per_example));
  targets.resize(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<std::int32_t>(
        (rank * 17 + salt * 5 + static_cast<int>(i) * 3) % cfg.num_features);
  }
  for (std::size_t b = 0; b < targets.size(); ++b) {
    // The label is a deterministic function of the features — learnable.
    targets[b] = static_cast<std::int32_t>(
        (inputs[b * static_cast<std::size_t>(cfg.features_per_example)] +
         inputs[b * static_cast<std::size_t>(cfg.features_per_example) + 1]) %
        cfg.num_classes);
  }
}

TEST(MlpNet, GradCheckThroughWholeNetwork) {
  MlpNetConfig cfg = tiny_net();
  MlpClassifier net(cfg);
  LocalParamStore store(net);

  std::vector<std::int32_t> inputs, targets;
  make_batch(0, 0, cfg, 3, inputs, targets);

  store.zero_grads();
  (void)net.forward_loss(inputs, targets);
  net.backward_loss(1.0f);

  const float eps = 3e-3f;
  for (Parameter* p : net.all_parameters()) {
    const std::int64_t stride = std::max<std::int64_t>(1, p->numel() / 5);
    for (std::int64_t i = 0; i < p->numel(); i += stride) {
      float* data = p->full_tensor().data<float>();
      const float save = data[i];
      data[i] = save + eps;
      const double up = net.forward_loss(inputs, targets);
      data[i] = save - eps;
      const double down = net.forward_loss(inputs, targets);
      data[i] = save;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad_tensor().get(i);
      const double denom =
          std::max({std::fabs(numeric), std::fabs(analytic), 0.05});
      EXPECT_LE(std::fabs(numeric - analytic) / denom, 8e-2)
          << p->name() << "[" << i << "] numeric=" << numeric
          << " analytic=" << analytic;
    }
  }
}

TEST(MlpNet, StrategyExactnessHoldsForNonTransformer) {
  const MlpNetConfig cfg = tiny_net();
  const fs::path dir =
      fs::temp_directory_path() / ("zi_mlp_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  auto run = [&](EngineConfig ecfg, const fs::path& d) {
    ecfg.nvme_dir = d.string();
    ecfg.adam.lr = 1e-2f;
    ecfg.loss_scale.init_scale = 1024.0f;
    std::vector<float> losses;
    AioEngine aio;
    run_ranks(2, [&](Communicator& comm) {
      MlpClassifier net(cfg);
      ZeroEngine engine(net, comm, aio, ecfg);
      std::vector<std::int32_t> inputs, targets;
      for (int s = 0; s < 12; ++s) {
        make_batch(comm.rank(), 0, cfg, 4, inputs, targets);
        const auto st = engine.train_step(inputs, targets);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
      }
    });
    return losses;
  };

  const auto ddp = run(preset_data_parallel(), dir / "ddp");
  const auto inf = run(preset_zero_infinity_nvme(), dir / "inf");
  const auto off = run(preset_zero_offload(), dir / "off");

  ASSERT_EQ(ddp.size(), 12u);
  for (std::size_t i = 0; i < ddp.size(); ++i) {
    EXPECT_EQ(inf[i], ddp[i]) << i;
    EXPECT_EQ(off[i], ddp[i]) << i;
  }
  // And it actually learns the synthetic rule.
  EXPECT_LT(ddp.back(), ddp.front());
  fs::remove_all(dir);
}

TEST(MlpNet, InputValidation) {
  MlpClassifier net(tiny_net());
  LocalParamStore store(net);
  std::vector<std::int32_t> inputs(7, 0), targets(2, 0);  // 7 != 2*4
  EXPECT_THROW(net.forward_loss(inputs, targets), Error);
  EXPECT_THROW(net.backward_loss(1.0f), Error);  // no forward yet
  Tensor t({1}, DType::kF32);
  EXPECT_THROW(net.forward(t), Error);
}

TEST(MlpNet, ParameterCount) {
  MlpNetConfig cfg = tiny_net();
  MlpClassifier net(cfg);
  // features 32x16 + 2x(16x16 + 16) + head 16x5 + 5.
  EXPECT_EQ(net.num_parameters(), 32 * 16 + 2 * (16 * 16 + 16) + 16 * 5 + 5);
}

// ---------------------------------------------------------------------------
// Generation through the hook-driven forward.

TEST(GptGeneration, LearnsAndReproducesAPeriodicSequence) {
  GptConfig mc;
  mc.vocab = 16;
  mc.seq = 8;
  mc.hidden = 32;
  mc.layers = 2;
  mc.heads = 4;
  Gpt model(mc);
  LocalParamStore store(model);

  // Memorize the periodic sequence "0 1 2 3 ..." at every phase offset, so
  // the model is robust to the sliding generation window (each training row
  // r starts the cycle at phase r).
  std::vector<std::int32_t> tokens(4 * mc.seq), targets(tokens.size());
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::int64_t i = 0; i < mc.seq; ++i) {
      const auto idx = r * static_cast<std::size_t>(mc.seq) +
                       static_cast<std::size_t>(i);
      tokens[idx] = static_cast<std::int32_t>((i + static_cast<std::int64_t>(r)) % 4);
      targets[idx] = static_cast<std::int32_t>((i + static_cast<std::int64_t>(r) + 1) % 4);
    }
  }
  AdamConfig adam;
  adam.lr = 1e-2f;
  std::vector<std::vector<float>> m, v;
  for (Parameter* p : model.all_parameters()) {
    m.emplace_back(static_cast<std::size_t>(p->numel()), 0.0f);
    v.emplace_back(static_cast<std::size_t>(p->numel()), 0.0f);
  }
  for (int s = 1; s <= 60; ++s) {
    store.zero_grads();
    (void)model.forward_loss(tokens, targets);
    model.backward_loss(1.0f);
    const auto params = model.all_parameters();
    for (std::size_t k = 0; k < params.size(); ++k) {
      Parameter* p = params[k];
      adam_step(adam, s, p->full_tensor().span<float>(), m[k], v[k],
                p->grad_tensor().span<float>());
    }
  }

  const std::int32_t prompt[] = {0, 1, 2};
  const auto generated = model.generate_greedy(prompt, 12);
  ASSERT_EQ(generated.size(), 12u);
  for (std::size_t i = 0; i < generated.size(); ++i) {
    EXPECT_EQ(generated[i], static_cast<std::int32_t>(i % 4)) << i;
  }
}

TEST(GptGeneration, SampledGenerationSemantics) {
  GptConfig mc;
  mc.vocab = 16;
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 1;
  mc.heads = 2;
  Gpt model(mc);
  LocalParamStore store(model);
  const std::int32_t prompt[] = {1, 2, 3};

  // temperature -> 0 and top_k = 1 both recover greedy decoding.
  const auto greedy = model.generate_greedy(prompt, 10);
  EXPECT_EQ(model.generate_sampled(prompt, 10, 0.0f, 0, 1), greedy);
  EXPECT_EQ(model.generate_sampled(prompt, 10, 1.0f, 1, 7), greedy);

  // Deterministic by seed; different seeds may diverge.
  const auto a = model.generate_sampled(prompt, 20, 1.5f, 0, 42);
  const auto b = model.generate_sampled(prompt, 20, 1.5f, 0, 42);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 20u);
  for (const std::int32_t t : a) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, mc.vocab);
  }
}

TEST(GptGeneration, ForwardLogitsShapeAndDeterminism) {
  GptConfig mc;
  mc.vocab = 16;
  mc.seq = 8;
  Gpt model(mc);
  LocalParamStore store(model);
  std::vector<std::int32_t> tokens(8, 3);
  Tensor a = model.forward_logits(tokens);
  Tensor b = model.forward_logits(tokens);
  ASSERT_EQ(a.shape(), (std::vector<std::int64_t>{8, 16}));
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.get(i), b.get(i));
}

}  // namespace
}  // namespace zi
