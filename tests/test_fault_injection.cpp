// Fault-injection subsystem tests.
//
// Three layers under test:
//   1. the injector itself — spec parsing, seeded determinism, stats;
//   2. the handling machinery — AioEngine retry-with-backoff, TierBuffer
//      OOM spill, pinned-pool stalls — each in isolation;
//   3. end-to-end masking — a ZeRO-3 + NVMe training run under injected
//      EIO/latency faults follows the *bit-identical* loss trajectory of a
//      fault-free run, because every transient failure is absorbed by a
//      retry or a placement spill, neither of which touches values.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <filesystem>
#include <vector>

#include "core/engine.hpp"
#include "model/gpt.hpp"
#include "model/linear.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

/// Every test runs against the process-wide injector; reset it on both ends
/// so no schedule leaks across cases.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().clear();
    dir_ = fs::temp_directory_path() /
           ("zi_faults_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

// ---------------------------------------------------------------------------
// The injector itself.

TEST_F(FaultInjectionTest, DisabledByDefaultAndDecisionIsEmpty) {
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(static_cast<bool>(fault_check(FaultSite::kAioRead)));
  // The guard must not even count the operation when disarmed.
  EXPECT_EQ(FaultInjector::instance().stats(FaultSite::kAioRead).ops, 0u);
}

TEST_F(FaultInjectionTest, SpecParsingRoundTrips) {
  auto& inj = FaultInjector::instance();
  inj.configure(
      "seed=42;aio_read:error,p=0.25;aio_write:short,p=0.1,count=3;"
      "nvme_alloc:error,after=10;pinned_acquire:delay,p=1,delay_us=200");
  EXPECT_TRUE(FaultInjector::armed());
  EXPECT_EQ(inj.seed(), 42u);

  const auto reads = inj.rules(FaultSite::kAioRead);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].kind, FaultKind::kError);
  EXPECT_DOUBLE_EQ(reads[0].probability, 0.25);

  const auto writes = inj.rules(FaultSite::kAioWrite);
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].kind, FaultKind::kShort);
  EXPECT_EQ(writes[0].max_fires, 3);

  const auto allocs = inj.rules(FaultSite::kNvmeAllocate);
  ASSERT_EQ(allocs.size(), 1u);
  EXPECT_EQ(allocs[0].after, 10);

  const auto pinned = inj.rules(FaultSite::kPinnedAcquire);
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0].kind, FaultKind::kDelay);
  EXPECT_EQ(pinned[0].delay_us, 200u);
}

TEST_F(FaultInjectionTest, MalformedSpecsThrow) {
  auto& inj = FaultInjector::instance();
  // zilint:allow(fault-site-sync): deliberately-unknown site must throw
  EXPECT_THROW(inj.configure("bogus_site:error,p=0.1"), Error);
  EXPECT_THROW(inj.configure("aio_read:explode"), Error);
  EXPECT_THROW(inj.configure("aio_read:error,p=nope"), Error);
  EXPECT_THROW(inj.configure("aio_read"), Error);
  EXPECT_FALSE(FaultInjector::armed());
}

TEST_F(FaultInjectionTest, SameSeedSameSchedule) {
  auto& inj = FaultInjector::instance();
  auto schedule = [&](std::uint64_t seed) {
    inj.clear();
    inj.configure("seed=" + std::to_string(seed) + ";aio_read:error,p=0.3");
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(fault_check(FaultSite::kAioRead).error);
    }
    return fires;
  };
  const auto a = schedule(7);
  const auto b = schedule(7);
  const auto c = schedule(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-200 false-failure odds
  // p=0.3 over 200 draws: the count is deterministic given the seed, and
  // far from both 0 and 200.
  const auto fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 120);
}

TEST_F(FaultInjectionTest, AfterAndCountGateFiring) {
  auto& inj = FaultInjector::instance();
  inj.configure("nvme_alloc:error,after=3,count=2");
  std::vector<bool> fires;
  for (int i = 0; i < 8; ++i) {
    fires.push_back(fault_check(FaultSite::kNvmeAllocate).error);
  }
  const std::vector<bool> expect = {false, false, false, true,
                                    true,  false, false, false};
  EXPECT_EQ(fires, expect);
  EXPECT_EQ(inj.stats(FaultSite::kNvmeAllocate).ops, 8u);
  EXPECT_EQ(inj.stats(FaultSite::kNvmeAllocate).errors, 2u);
  EXPECT_EQ(inj.total_fires(), 2u);
}

// ---------------------------------------------------------------------------
// AioEngine retry-with-backoff.

TEST_F(FaultInjectionTest, TransientIoErrorsAreRetriedInvisibly) {
  AioConfig acfg;
  acfg.max_retries = 4;
  acfg.retry_backoff_us = 1;
  AioEngine aio(acfg);
  AioFile* f = aio.open(dir_ / "retry.bin");

  // First two write syscalls fail with EIO; retries must mask them.
  FaultInjector::instance().configure("aio_write:error,after=0,count=2");
  std::vector<std::byte> data(4096, std::byte{0x5A});
  aio.write(f, 0, data);
  FaultInjector::instance().clear();

  std::vector<std::byte> back(4096);
  aio.read(f, 0, back);
  EXPECT_TRUE(back == data);
  EXPECT_GE(aio.stats().retries, 2u);
  EXPECT_EQ(aio.stats().retries_exhausted, 0u);
}

TEST_F(FaultInjectionTest, ShortTransfersAreCompletedByTheInnerLoop) {
  AioEngine aio;
  AioFile* f = aio.open(dir_ / "short.bin");
  std::vector<std::byte> data(1 << 16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 131);
  }
  // Every write syscall transfers only part of the request; the engine's
  // transfer loop must keep going without consuming a retry.
  FaultInjector::instance().configure("aio_write:short,p=1");
  aio.write(f, 0, data);
  FaultInjector::instance().clear();

  std::vector<std::byte> back(data.size());
  aio.read(f, 0, back);
  EXPECT_TRUE(back == data);
  EXPECT_EQ(aio.stats().retries_exhausted, 0u);
}

TEST_F(FaultInjectionTest, ExhaustedRetriesSurfaceTypedErrorAndErrno) {
  AioConfig acfg;
  acfg.max_retries = 1;
  acfg.retry_backoff_us = 1;
  AioEngine aio(acfg);
  AioFile* f = aio.open(dir_ / "dead.bin");
  f->resize(4096);

  FaultInjector::instance().configure("aio_read:error,after=0");  // persistent
  std::vector<std::byte> buf(4096);
  AioStatus st = aio.submit_read(f, 0, buf);
  EXPECT_THROW(st.wait(), RetriesExhaustedError);
  // The non-throwing accessors report the same failure.
  EXPECT_TRUE(st.done());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error_code(), EIO);
  EXPECT_LT(st.bytes_transferred(), buf.size());
  FaultInjector::instance().clear();
  EXPECT_GE(aio.stats().retries_exhausted, 1u);

  FaultInjector::instance().configure("aio_read:error,after=0");
  try {
    aio.read(f, 0, buf);
    FAIL() << "expected RetriesExhaustedError";
  } catch (const RetriesExhaustedError& e) {
    EXPECT_EQ(e.error_code(), EIO);
    EXPECT_EQ(e.attempts(), acfg.max_retries + 1);
  }
}

// ---------------------------------------------------------------------------
// Graceful OOM degradation (TierBuffer spill).

TEST_F(FaultInjectionTest, ArenaOomSpillsToCpuWhenEnabled) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2,
                    DeviceArena::Mode::kReal, 0, /*spill_on_oom=*/true);
  FaultInjector::instance().configure("arena_alloc:error,after=0,count=1");

  TierBuffer buf(res, Tier::kGpu, 4096);
  EXPECT_EQ(buf.tier(), Tier::kCpu);
  EXPECT_EQ(buf.requested_tier(), Tier::kGpu);
  EXPECT_TRUE(buf.spilled());
  EXPECT_EQ(res.accountant().spills(Tier::kGpu), 1u);
  EXPECT_EQ(res.accountant().used(Tier::kCpu), 4096u);
  EXPECT_EQ(res.accountant().used(Tier::kGpu), 0u);

  // The spilled buffer is fully functional.
  std::vector<std::byte> data(4096, std::byte{0x42});
  buf.store(data);
  std::vector<std::byte> back(4096);
  buf.load(back);
  EXPECT_TRUE(back == data);

  // The count=1 budget is spent: the next GPU buffer lands on-tier.
  TierBuffer ok(res, Tier::kGpu, 4096);
  EXPECT_EQ(ok.tier(), Tier::kGpu);
  EXPECT_FALSE(ok.spilled());
}

TEST_F(FaultInjectionTest, ArenaOomIsFatalWhenSpillDisabled) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2);
  ASSERT_FALSE(res.spill_on_oom());
  FaultInjector::instance().configure("arena_alloc:error,after=0,count=1");
  EXPECT_THROW(TierBuffer(res, Tier::kGpu, 4096), OutOfMemoryError);
}

TEST_F(FaultInjectionTest, NvmeExhaustionSpillsToCpu) {
  AioEngine aio;
  RankResources res(0, aio, 1 << 20, 1 << 20, dir_, 4096, 2,
                    DeviceArena::Mode::kReal, 0, /*spill_on_oom=*/true);
  FaultInjector::instance().configure("nvme_alloc:error,after=0,count=1");
  TierBuffer buf(res, Tier::kNvme, 4096);
  EXPECT_EQ(buf.tier(), Tier::kCpu);
  EXPECT_EQ(buf.requested_tier(), Tier::kNvme);
  EXPECT_EQ(res.accountant().spills(Tier::kNvme), 1u);
}

TEST_F(FaultInjectionTest, PinnedExhaustionMakesTryAcquireFail) {
  PinnedBufferPool pool(4096, 4);
  FaultInjector::instance().configure("pinned_acquire:error,after=0,count=2");
  EXPECT_FALSE(pool.try_acquire().has_value());
  EXPECT_FALSE(pool.try_acquire().has_value());
  // Budget spent: the pool really does have buffers.
  auto lease = pool.try_acquire();
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->size(), 4096u);
}

// ---------------------------------------------------------------------------
// Prefetch exception-safety: a prefetched NVMe read whose retries are
// exhausted must not leak its coordinator map entry or its pinned staging
// lease. Pre-fix, the entry stayed in `prefetch_` after wait() threw: the
// pinned buffer was held forever, and the next trace divergence re-threw
// the stale error out of drop_prefetches().

TEST_F(FaultInjectionTest, FailedPrefetchReleasesSlotAndRecovers) {
  AioConfig acfg;
  acfg.num_workers = 1;
  acfg.max_retries = 1;
  acfg.retry_backoff_us = 1;
  AioEngine aio(acfg);

  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.param_placement = Placement::kNvme;
  cfg.optimizer_placement = Placement::kCpu;
  cfg.grad_placement = Placement::kCpu;
  cfg.prefetch_depth = 2;
  cfg.overlap_transfers = true;
  cfg.nvme_dir = dir_.string();

  // Parameter ids must be unique across the tree → one root finalize().
  struct TwoLinears : Module {
    TwoLinears() : Module("m") {
      a = std::make_unique<Linear>("m.a", 4, 4);
      b = std::make_unique<Linear>("m.b", 4, 4);
      register_child(a.get());
      register_child(b.get());
    }
    Tensor forward(const Tensor& x) override {
      return b->run_forward(a->run_forward(x));
    }
    Tensor backward(const Tensor& dy) override {
      return a->run_backward(b->run_backward(dy));
    }
    std::unique_ptr<Linear> a, b;
  };

  run_ranks(1, [&](Communicator& comm) {
    TwoLinears model;
    model.finalize();
    const std::vector<Parameter*> params = model.all_parameters();
    ASSERT_EQ(params.size(), 4u);
    RankResources res(comm.rank(), aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024,
                      2);
    ModelStateStore store(res, cfg, params, comm.rank(), 1);
    ParamCoordinator coord(store, res, comm, cfg);
    const std::size_t pinned_total = res.pinned().num_buffers();

    // Iteration 1 records the trace [a.w, a.b, b.w, b.b].
    coord.begin_iteration();
    for (Parameter* p : params) {
      coord.fetch(p, false);
      coord.release(p);
    }

    // Iteration 2 replays it. The first read (a.w's synchronous shard
    // load) passes; every later read — the two async prefetches issued
    // behind it — fails persistently, so their statuses end in error.
    coord.begin_iteration();
    FaultInjector::instance().configure("aio_read:error,after=1");
    coord.fetch(params[0], false);
    coord.release(params[0]);
    EXPECT_EQ(coord.stats().prefetches_issued, 2u);

    // Consuming the poisoned prefetch surfaces the typed error...
    EXPECT_THROW(coord.fetch(params[1], false), RetriesExhaustedError);
    // ...but the slot was consumed: counted as a drop, not left in flight.
    EXPECT_EQ(coord.stats().prefetch_drops, 1u);
    EXPECT_EQ(coord.stats().prefetch_hits, 0u);

    // With the fault gone the retry falls back to a clean synchronous
    // load (pre-fix the leaked entry made this re-throw).
    FaultInjector::instance().clear();
    coord.fetch(params[1], false);
    EXPECT_EQ(params[1]->status(), Parameter::Status::kAvailable);
    for (std::int64_t i = 0; i < params[1]->numel(); ++i) {
      EXPECT_EQ(params[1]->full_tensor().get(i),
                half(params[1]->init_value(i)).to_float());
    }
    coord.release(params[1]);

    // Accounting truth invariant with nothing left in flight, and every
    // pinned staging lease back in the pool.
    EXPECT_GE(coord.stats().trace_invalidations, 1u);
    EXPECT_EQ(coord.stats().prefetch_hits + coord.stats().prefetch_drops,
              coord.stats().prefetches_issued);
    EXPECT_EQ(res.pinned().available(), pinned_total);
  });
  FaultInjector::instance().clear();
}

// ---------------------------------------------------------------------------
// End-to-end masking: the ISSUE acceptance scenario. ZeRO-3 + NVMe under
// p=0.05 EIO + latency faults on every NVMe op must follow the bit-exact
// trajectory of the fault-free run.

std::vector<float> run_zero3_nvme(const fs::path& dir, int steps,
                                  const std::string& faults) {
  GptConfig mc;
  mc.vocab = 32;
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 2;
  mc.heads = 2;
  mc.tie_embeddings = true;
  mc.checkpoint_activations = true;

  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = (dir / "swap").string();

  AioConfig acfg;
  // Deep retry budget so the masked run cannot plausibly exhaust it:
  // P(11 consecutive injected failures) = 0.05^11.
  acfg.max_retries = 10;
  acfg.retry_backoff_us = 1;

  std::vector<float> losses(static_cast<std::size_t>(steps));
  AioEngine aio(acfg);
  if (!faults.empty()) FaultInjector::instance().configure(faults);
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    for (int s = 0; s < steps; ++s) {
      const std::int64_t n = 2 * mc.seq;
      tokens.resize(static_cast<std::size_t>(n));
      targets.resize(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        const auto v = (comm.rank() * 31 + s * 7 + i * 3) % (mc.vocab - 1);
        tokens[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(v);
        targets[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>((v * 3 + 3) % (mc.vocab - 1));
      }
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) losses[static_cast<std::size_t>(s)] = st.global_loss;
    }
  });
  return losses;
}

TEST_F(FaultInjectionTest, InjectedNvmeFaultsAreFullyMaskedOverFiftySteps) {
  constexpr int kSteps = 50;
  const auto clean = run_zero3_nvme(dir_ / "clean", kSteps, "");

  const auto faulty = run_zero3_nvme(
      dir_ / "faulty", kSteps,
      "seed=1234;aio_read:error,p=0.05;aio_write:error,p=0.05;"
      "aio_read:delay,p=0.05,delay_us=50;aio_write:delay,p=0.05,delay_us=50");

  const auto read_stats = FaultInjector::instance().stats(FaultSite::kAioRead);
  const auto write_stats =
      FaultInjector::instance().stats(FaultSite::kAioWrite);
  FaultInjector::instance().clear();
  // The schedule really injected faults...
  EXPECT_GT(read_stats.errors + write_stats.errors, 0u);
  EXPECT_GT(read_stats.delays + write_stats.delays, 0u);
  // ...and the trajectory is still bit-exact.
  ASSERT_EQ(clean.size(), faulty.size());
  for (std::size_t s = 0; s < clean.size(); ++s) {
    EXPECT_EQ(clean[s], faulty[s]) << "step " << s;
  }
}

TEST_F(FaultInjectionTest, InjectedArenaOomSpillPreservesTrajectory) {
  GptConfig mc;
  mc.vocab = 32;
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 2;
  mc.heads = 2;
  mc.tie_embeddings = true;
  mc.checkpoint_activations = true;

  std::array<std::uint64_t, 2> spills{};
  auto run = [&](const fs::path& dir, bool faults) {
    EngineConfig cfg = preset_zero3();
    cfg.nvme_dir = (dir / "swap").string();
    cfg.spill_on_oom = true;
    std::vector<float> losses;
    AioEngine aio;
    if (faults) {
      // The first three GPU-arena allocations (shard buffers created during
      // engine construction) OOM and spill to CPU.
      FaultInjector::instance().configure("arena_alloc:error,after=0,count=3");
    }
    run_ranks(2, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      std::vector<std::int32_t> tokens(16, 1), targets(16, 2);
      for (int s = 0; s < 4; ++s) {
        const auto st = engine.train_step(tokens, targets);
        if (comm.rank() == 0) losses.push_back(st.global_loss);
      }
      spills[static_cast<std::size_t>(comm.rank())] =
          engine.resources().accountant().total_spills();
    });
    FaultInjector::instance().clear();
    return losses;
  };

  const auto clean = run(dir_ / "clean", false);
  EXPECT_EQ(spills[0] + spills[1], 0u);
  const auto spilled = run(dir_ / "spilled", true);
  // All three injected OOMs were absorbed (which rank absorbed each one
  // depends on construction interleaving; the sum is deterministic).
  EXPECT_EQ(spills[0] + spills[1], 3u);
  EXPECT_EQ(clean, spilled);
}

}  // namespace
}  // namespace zi
