#include <gtest/gtest.h>

#include "common/units.hpp"

namespace zi {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(format_bytes(kGiB + kGiB / 2), "1.50 GiB");
  EXPECT_EQ(format_bytes(2 * kTiB), "2.00 TiB");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(25.0e9), "25.00 GB/s");
  EXPECT_EQ(format_bandwidth(1.6e9), "1.60 GB/s");
  EXPECT_EQ(format_bandwidth(3.5e6), "3.50 MB/s");
}

TEST(Units, FormatCount) {
  EXPECT_EQ(format_count(1.0e12), "1.00T");
  EXPECT_EQ(format_count(175.0e9), "175.00B");
  EXPECT_EQ(format_count(1.4e9), "1.40B");
  EXPECT_EQ(format_count(12.0e6), "12.00M");
  EXPECT_EQ(format_count(42.0), "42");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(2.5), "2.500 s");
  EXPECT_EQ(format_duration(0.012), "12.000 ms");
  EXPECT_EQ(format_duration(42e-6), "42.0 us");
}

TEST(Units, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 8), 16u);
  EXPECT_EQ(align_up(4095, 4096), 4096u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
}

TEST(Units, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(1000, 3), 334u);
}

}  // namespace
}  // namespace zi
