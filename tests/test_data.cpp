// Data substrate + LR schedule + Trainer tests.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/ckpt_io.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/tokenizer.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenizer

TEST(Tokenizer, RoundTripsPrintableText) {
  ByteTokenizer tok;
  const std::string text = "Hello, ZeRO-Infinity!\n\tGPU -> CPU -> NVMe.";
  const auto ids = tok.encode(text);
  EXPECT_EQ(tok.decode(ids), text);
}

TEST(Tokenizer, UnknownBytesMapToUnk) {
  ByteTokenizer tok;
  const std::string text = "a\x01z";
  const auto ids = tok.encode(text);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], tok.unk_id());
  EXPECT_NE(ids[0], tok.unk_id());
}

TEST(Tokenizer, VocabIsCompactAndStable) {
  ByteTokenizer tok;
  // <unk> + \n + \t + 95 printable = 98.
  EXPECT_EQ(tok.vocab_size(), 98);
  EXPECT_EQ(tok.encode_char('A'), ByteTokenizer().encode_char('A'));
  for (std::int32_t id = 0; id < tok.vocab_size(); ++id) {
    (void)tok.decode_id(id);  // all ids decodable
  }
  EXPECT_THROW(tok.decode_id(tok.vocab_size()), Error);
}

// ---------------------------------------------------------------------------
// Dataset

std::vector<std::int32_t> iota_tokens(int n) {
  std::vector<std::int32_t> t(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) t[static_cast<std::size_t>(i)] = i % 17;
  return t;
}

TEST(Dataset, WindowIsShiftedByOne) {
  TokenDataset ds(iota_tokens(100), /*seq=*/8);
  std::vector<std::int32_t> in(8), tg(8);
  ds.window(5, in, tg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(in[static_cast<std::size_t>(i)], (5 + i) % 17);
    EXPECT_EQ(tg[static_cast<std::size_t>(i)], (6 + i) % 17);
  }
  EXPECT_EQ(ds.num_windows(), 92);
  EXPECT_THROW(ds.window(92, in, tg), Error);
}

TEST(Dataset, SamplingIsDeterministicPerStepAndRank) {
  TokenDataset ds(iota_tokens(500), 8);
  std::vector<std::int32_t> a_in, a_tg, b_in, b_tg;
  ds.sample_batch(3, 1, 2, a_in, a_tg);
  ds.sample_batch(3, 1, 2, b_in, b_tg);
  EXPECT_EQ(a_in, b_in);
  EXPECT_EQ(a_tg, b_tg);
  // Different rank or step → different batch.
  ds.sample_batch(3, 0, 2, b_in, b_tg);
  EXPECT_NE(a_in, b_in);
  ds.sample_batch(4, 1, 2, b_in, b_tg);
  EXPECT_NE(a_in, b_in);
}

TEST(Dataset, SampledTargetsShiftInputs) {
  TokenDataset ds(iota_tokens(300), 4);
  std::vector<std::int32_t> in, tg;
  ds.sample_batch(0, 0, 3, in, tg);
  ASSERT_EQ(in.size(), 12u);
  // Within each window, target[i] must be the corpus successor of
  // input[i]; with the iota corpus that's input+1 mod 17.
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(tg[i], (in[i] + 1) % 17) << i;
  }
}

TEST(Dataset, RejectsTooSmallCorpus) {
  EXPECT_THROW(TokenDataset(iota_tokens(5), 8), Error);
}

// ---------------------------------------------------------------------------
// LR schedule

TEST(LrSchedule, WarmupRampsLinearly) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.warmup_steps = 10;
  s.total_steps = 100;
  s.decay = LrSchedule::Decay::kConstant;
  EXPECT_FLOAT_EQ(s.at(1), 0.1f);
  EXPECT_FLOAT_EQ(s.at(5), 0.5f);
  EXPECT_FLOAT_EQ(s.at(10), 1.0f);
  EXPECT_FLOAT_EQ(s.at(50), 1.0f);
}

TEST(LrSchedule, CosineDecaysToMin) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.min_lr = 0.1f;
  s.warmup_steps = 0;
  s.total_steps = 100;
  s.decay = LrSchedule::Decay::kCosine;
  EXPECT_NEAR(s.at(1), 1.0f, 0.01f);
  EXPECT_NEAR(s.at(50), 0.55f, 0.02f);   // midpoint = (base+min)/2
  EXPECT_FLOAT_EQ(s.at(100), 0.1f);
  EXPECT_FLOAT_EQ(s.at(200), 0.1f);      // clamped past the horizon
}

TEST(LrSchedule, LinearDecay) {
  LrSchedule s;
  s.base_lr = 2.0f;
  s.min_lr = 0.0f;
  s.total_steps = 4;
  s.decay = LrSchedule::Decay::kLinear;
  EXPECT_FLOAT_EQ(s.at(2), 1.0f);
  EXPECT_FLOAT_EQ(s.at(4), 0.0f);
}

TEST(LrSchedule, MonotoneAfterWarmup) {
  LrSchedule s;
  s.base_lr = 1.0f;
  s.warmup_steps = 5;
  s.total_steps = 50;
  float prev = 2.0f;
  for (std::int64_t t = 5; t <= 50; ++t) {
    const float lr = s.at(t);
    EXPECT_LE(lr, prev) << t;
    prev = lr;
  }
}

// ---------------------------------------------------------------------------
// Trainer

TEST(Trainer, EndToEndWithEvalCheckpointAndSchedule) {
  const fs::path dir =
      fs::temp_directory_path() / ("zi_trainer_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  ByteTokenizer tok;
  std::string corpus;
  for (int i = 0; i < 30; ++i) corpus += "the quick brown fox jumps. ";
  GptConfig mc;
  mc.vocab = tok.vocab_size();
  mc.seq = 16;
  mc.hidden = 32;
  mc.layers = 2;
  mc.heads = 4;
  TokenDataset data(tok.encode(corpus), mc.seq);

  TrainerConfig tc;
  tc.total_steps = 10;
  tc.batch_per_rank = 2;
  tc.micro_batches = 2;
  tc.eval_every = 5;
  tc.checkpoint_every = 5;
  tc.checkpoint_path = (dir / "trainer.ckpt").string();
  tc.schedule.base_lr = 5e-3f;
  tc.schedule.warmup_steps = 2;
  tc.schedule.total_steps = 10;

  EngineConfig cfg = preset_zero_infinity_cpu();
  cfg.nvme_dir = (dir / "swap").string();
  cfg.loss_scale.init_scale = 1024.0f;

  TrainerReport report;
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    Trainer trainer(engine, comm, data, &data, tc);
    const TrainerReport r = trainer.run();
    if (comm.rank() == 0) report = r;
  });

  ASSERT_EQ(report.train_losses.size(), 10u);
  EXPECT_EQ(report.eval_losses.size(), 2u);
  EXPECT_EQ(report.checkpoints_written, 2);
  // Checkpoints are step-suffixed, committed with a checksum manifest, and
  // both survive (checkpoint_keep defaults to 2).
  const std::string ckpt10 = Trainer::checkpoint_file(tc.checkpoint_path, 10);
  EXPECT_TRUE(fs::exists(Trainer::checkpoint_file(tc.checkpoint_path, 5)));
  EXPECT_TRUE(fs::exists(ckpt10));
  EXPECT_TRUE(fs::exists(ckpt_manifest_path(ckpt10)));
  // Learns the repetitive corpus.
  EXPECT_LT(report.train_losses.back(), report.train_losses.front());
  // And the checkpoint can seed a resumed trainer that continues counting.
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    TrainerConfig tc2 = tc;
    tc2.total_steps = 12;  // resumes at step 11
    tc2.checkpoint_every = 0;
    Trainer trainer(engine, comm, data, nullptr, tc2);
    EXPECT_EQ(trainer.try_resume(), 10);
    EXPECT_EQ(engine.steps(), 10);
    const TrainerReport r2 = trainer.run();
    EXPECT_EQ(r2.train_losses.size(), 2u);
  });
  fs::remove_all(dir);
}

TEST(Trainer, TrajectoryIdenticalAcrossStrategiesThroughFullStack) {
  // The exactness matrix holds when driven through the whole user-facing
  // stack (tokenizer → dataset → trainer → engine).
  const fs::path dir =
      fs::temp_directory_path() / ("zi_trainer2_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  ByteTokenizer tok;
  std::string corpus;
  for (int i = 0; i < 20; ++i) corpus += "abcdefgh ";
  GptConfig mc;
  mc.vocab = tok.vocab_size();
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 1;
  mc.heads = 2;
  TokenDataset data(tok.encode(corpus), mc.seq);

  auto run = [&](EngineConfig cfg, const fs::path& d) {
    cfg.nvme_dir = d.string();
    TrainerConfig tc;
    tc.total_steps = 5;
    tc.batch_per_rank = 1;
    tc.schedule.base_lr = 1e-3f;
    tc.schedule.decay = LrSchedule::Decay::kConstant;
    std::vector<float> losses;
    AioEngine aio;
    run_ranks(2, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      Trainer trainer(engine, comm, data, nullptr, tc);
      const TrainerReport r = trainer.run();
      if (comm.rank() == 0) losses = r.train_losses;
    });
    return losses;
  };

  const auto ddp = run(preset_data_parallel(), dir / "ddp");
  const auto inf = run(preset_zero_infinity_nvme(), dir / "inf");
  ASSERT_EQ(ddp.size(), inf.size());
  for (std::size_t i = 0; i < ddp.size(); ++i) EXPECT_EQ(ddp[i], inf[i]) << i;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace zi
