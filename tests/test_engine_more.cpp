// Additional engine-path coverage: untied embeddings, NVMe gradient tier,
// tiling × accumulation × NVMe combinations, step timings, and TierBuffer
// move semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/engine.hpp"
#include "core/tiling.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

class EngineMoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_more_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

GptConfig tiny(bool tie = true, bool ckpt = true) {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.tie_embeddings = tie;
  cfg.checkpoint_activations = ckpt;
  return cfg;
}

std::vector<float> run(const GptConfig& mc, EngineConfig cfg,
                       const fs::path& d, int world = 2, int steps = 4) {
  cfg.nvme_dir = d.string();
  std::vector<float> losses;
  AioEngine aio;
  run_ranks(world, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(2 * static_cast<std::size_t>(mc.seq));
    std::vector<std::int32_t> targets(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      tokens[i] = static_cast<std::int32_t>((comm.rank() * 3 + i) % 31);
      targets[i] = static_cast<std::int32_t>((tokens[i] + 1) % 31);
    }
    for (int s = 0; s < steps; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) losses.push_back(st.global_loss);
    }
  });
  return losses;
}

TEST_F(EngineMoreTest, UntiedEmbeddingsStayExactAcrossStrategies) {
  const GptConfig mc = tiny(/*tie=*/false);
  const auto ddp = run(mc, preset_data_parallel(), dir_ / "ddp");
  const auto inf = run(mc, preset_zero_infinity_nvme(), dir_ / "inf");
  for (std::size_t i = 0; i < ddp.size(); ++i) EXPECT_EQ(ddp[i], inf[i]) << i;
}

TEST_F(EngineMoreTest, NoActivationCheckpointingStageThree) {
  const GptConfig mc = tiny(/*tie=*/true, /*ckpt=*/false);
  const auto ddp = run(mc, preset_data_parallel(), dir_ / "d");
  const auto inf = run(mc, preset_zero_infinity_cpu(), dir_ / "i");
  for (std::size_t i = 0; i < ddp.size(); ++i) EXPECT_EQ(ddp[i], inf[i]) << i;
}

TEST_F(EngineMoreTest, NvmeGradientTierStaysExact) {
  const GptConfig mc = tiny();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.grad_placement = Placement::kNvme;  // grads also live in swap files
  cfg.optimizer_chunk_elems = 32;         // chunked reads of NVMe grads
  const auto ddp = run(mc, preset_data_parallel(), dir_ / "d");
  const auto nvme = run(mc, cfg, dir_ / "n");
  for (std::size_t i = 0; i < ddp.size(); ++i) EXPECT_EQ(ddp[i], nvme[i]) << i;
}

TEST_F(EngineMoreTest, TilingAccumulationNvmeComboTrains) {
  GptConfig mc = tiny();
  mc.hidden = 32;
  mc.heads = 4;
  mc.linear_factory = TiledLinear::factory(4);
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = (dir_ / "combo").string();
  cfg.adam.lr = 5e-3f;
  cfg.loss_scale.init_scale = 1024.0f;
  std::vector<float> losses;
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> t0(static_cast<std::size_t>(mc.seq)),
        g0(t0.size()), t1(t0.size()), g1(t0.size());
    for (std::size_t i = 0; i < t0.size(); ++i) {
      t0[i] = static_cast<std::int32_t>((comm.rank() + i) % 31);
      g0[i] = static_cast<std::int32_t>((t0[i] + 1) % 31);
      t1[i] = static_cast<std::int32_t>((comm.rank() + 2 * i) % 31);
      g1[i] = static_cast<std::int32_t>((t1[i] + 1) % 31);
    }
    const ZeroEngine::MicroBatch micros[] = {{t0, g0}, {t1, g1}};
    for (int s = 0; s < 8; ++s) {
      const auto st = engine.train_step(micros);
      if (comm.rank() == 0) losses.push_back(st.global_loss);
    }
  });
  ASSERT_EQ(losses.size(), 8u);
  for (const float l : losses) EXPECT_TRUE(std::isfinite(l));
  EXPECT_LT(losses.back(), losses.front());
}

TEST_F(EngineMoreTest, StepTimingsArePopulated) {
  const GptConfig mc = tiny();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = (dir_ / "t").string();
  cfg.loss_scale.init_scale = 1024.0f;  // no overflow-skip on step 1
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(static_cast<std::size_t>(mc.seq), 1);
    std::vector<std::int32_t> targets(tokens.size(), 2);
    const auto st = engine.train_step(tokens, targets);
    EXPECT_GT(st.fwd_seconds, 0.0);
    EXPECT_GT(st.bwd_seconds, 0.0);
    EXPECT_GT(st.opt_seconds, 0.0);
    EXPECT_LT(st.fwd_seconds + st.bwd_seconds + st.opt_seconds, 60.0);
  });
}

TEST_F(EngineMoreTest, EventRecorderSeesTheFigure4Sequence) {
  const GptConfig mc = tiny(/*tie=*/true, /*ckpt=*/false);
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = (dir_ / "ev").string();
  std::vector<std::string> events;
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    if (comm.rank() == 0) {
      engine.coordinator()->set_observer([&](const DataMovementEvent& e) {
        events.push_back(format_event(e));
      });
    }
    std::vector<std::int32_t> tokens(static_cast<std::size_t>(mc.seq), 1);
    std::vector<std::int32_t> targets(tokens.size(), 2);
    engine.train_step(tokens, targets);
    engine.train_step(tokens, targets);  // prefetch kicks in
  });
  int gathers = 0, releases = 0, reduces = 0, prefetches = 0;
  for (const std::string& e : events) {
    if (e.starts_with("allgather")) ++gathers;
    if (e.starts_with("release")) ++releases;
    if (e.starts_with("reducescat")) ++reduces;
    if (e.starts_with("prefetch")) ++prefetches;
  }
  EXPECT_GT(gathers, 0);
  EXPECT_GT(releases, 0);
  EXPECT_GT(prefetches, 0);
  // One reduce-scatter per parameter per step: wte + wpe + 2 blocks x 12
  // (ln1 2, qkv 2, proj 2, ln2 2, fc1 2, fc2 2) + ln_f 2 = 28 parameters.
  EXPECT_EQ(reduces, 2 * 28);
  // The very first event is the token-embedding gather.
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events[0].find("gpt.wte.table"), std::string::npos);
}

TEST_F(EngineMoreTest, TierBufferMoveTransfersOwnership) {
  AioEngine aio;
  RankResources res(0, aio, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024, 2);
  const auto before = res.accountant().used(Tier::kCpu);
  {
    TierBuffer a(res, Tier::kCpu, 1000);
    std::vector<std::byte> payload(1000, std::byte{0x5C});
    a.store(payload);
    TierBuffer b(std::move(a));
    // Only one accounting entry survives; contents intact.
    EXPECT_EQ(res.accountant().used(Tier::kCpu), before + 1000);
    std::vector<std::byte> back(1000);
    b.load(back);
    EXPECT_EQ(back, payload);
  }
  EXPECT_EQ(res.accountant().used(Tier::kCpu), before);
}

}  // namespace
}  // namespace zi
