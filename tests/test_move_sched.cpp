// TransferScheduler tests (src/move/sched.*) — the deterministic harness
// that locks down the route-aware scheduling stage.
//
// Everything here is wall-clock-free: ordering, coalescing, starvation, and
// token-bucket decisions are asserted through the scheduler's two seams —
// a recording FakeBackend (completions happen exactly when the test says
// so) and a synthetic TestClock (token refills happen exactly when the test
// advances it). No sleeps, no timing asserts.
//
// Five layers under test:
//   1. priority — a latency fetch overtakes queued bulk spills, and the
//      starvation bound forces bulk through under latency pressure;
//   2. coalescing — exactly-adjacent same-route runs merge (gather for
//      spills, scatter for fetches); gaps, overlaps, route changes, and
//      oversized segments never merge;
//   3. token buckets — per-route rates throttle via the synthetic clock,
//      kick() re-evaluates after a refill, other routes stay unaffected;
//   4. accounting — through a real DataMover + NvmeStore, a coalesced run
//      counts bytes/transfers per original handle exactly once, identically
//      with coalescing on and off;
//   5. faults — injected aio_read errors on a merged request split back to
//      per-segment re-issues, failing exactly the original handles that
//      drew the error (no cross-handle corruption), deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "aio/aio_engine.hpp"
#include "aio/nvme_store.hpp"
#include "common/error.hpp"
#include "mem/pinned_pool.hpp"
#include "move/data_mover.hpp"
#include "move/sched.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + seed * 7 + 3) & 0xff);
  }
  return v;
}

// ---------------------------------------------------------------------------
// The two seams.

/// Synthetic time: now_ns() is a counter the test advances. Atomic because
/// the scheduler may read it from completion callbacks.
class TestClock final : public SchedClock {
 public:
  std::uint64_t now_ns() override {
    return ns_.load(std::memory_order_relaxed);
  }
  void advance(std::uint64_t delta_ns) {
    ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ns_{1};
};

/// Recording backend: issue() appends the op (and, for spills, a snapshot
/// of the payload — the gather has already happened by issue time) and
/// returns a manually-completable status. The test completes ops with
/// complete_ok()/complete_error(), honouring the SchedBackend contract that
/// `done` never runs inside issue(). Single-threaded by design: issue() is
/// reentered only from this thread's own complete_*() calls.
class FakeBackend final : public SchedBackend {
 public:
  struct Issued {
    SchedOp op;
    std::vector<std::byte> spill_payload;  ///< op bytes as handed over
    AioStatus::Source source;
    bool completed = false;
  };

  [[nodiscard]] AioStatus issue(const SchedOp& op,
                                std::function<void()> done) override {
    Issued rec;
    rec.op = op;
    if (route_is_spill(op.route)) {
      rec.spill_payload.assign(op.data, op.data + op.len);
    }
    rec.source = AioStatus::make_source();
    rec.source.set_on_complete(std::move(done));
    AioStatus status = rec.source.status();
    issued.push_back(std::move(rec));
    return status;
  }

  /// Complete op `i` successfully. May reenter issue() (the scheduler pumps
  /// from the completion callback), growing `issued`.
  void complete_ok(std::size_t i) {
    issued[i].completed = true;
    issued[i].source.complete(nullptr, 0, issued[i].op.len);
  }
  void complete_error(std::size_t i, int error_code) {
    issued[i].completed = true;
    issued[i].source.complete(
        std::make_exception_ptr(Error("injected backend failure")),
        error_code, 0);
  }

  // deque: references stay valid while completions append new issues.
  std::deque<Issued> issued;
};

/// Backend + clock + scheduler with coupled lifetime. Declare all data
/// buffers BEFORE the rig: its destructor completes every outstanding op
/// (so the scheduler's draining destructor terminates), which scatters into
/// the segments' destination buffers.
struct SchedRig {
  FakeBackend backend;
  TestClock clock;
  TransferScheduler sched;

  explicit SchedRig(TransferScheduler::Config cfg)
      : sched(backend, cfg, &clock) {}
  ~SchedRig() {
    // Completing an op may make the scheduler issue more; the loop re-reads
    // the size so those are completed too.
    for (std::size_t i = 0; i < backend.issued.size(); ++i) {
      if (!backend.issued[i].completed) backend.complete_ok(i);
    }
  }
};

/// One backend request in flight at a time, no coalescing, no rate limits —
/// the base configuration the ordering tests build on.
TransferScheduler::Config serial_cfg() {
  TransferScheduler::Config c;
  c.coalesce = false;
  c.max_inflight = 1;
  return c;
}

// ---------------------------------------------------------------------------
// 1. Priority classes and the starvation bound.

TEST(MoveSched, LatencyFetchOvertakesQueuedBulkSpill) {
  std::vector<std::byte> b0(1024), b1(1024), l0(1024);
  SchedRig rig(serial_cfg());

  // Bulk spill occupies the single slot; a second spill and then a latency
  // fetch queue behind it.
  const TransferScheduler::Ticket t0 = rig.sched.submit(
      Route::kNvmeSpill, TransferClass::kBulk, 0, b0.data(), b0.size());
  const TransferScheduler::Ticket t1 = rig.sched.submit(
      Route::kNvmeSpill, TransferClass::kBulk, 4096, b1.data(), b1.size());
  const TransferScheduler::Ticket tl = rig.sched.submit(
      Route::kNvmeFetch, TransferClass::kLatency, 8192, l0.data(), l0.size());
  ASSERT_EQ(rig.backend.issued.size(), 1u);
  EXPECT_EQ(rig.backend.issued[0].op.route, Route::kNvmeSpill);

  // Slot frees: the fetch overtakes the spill that arrived first.
  rig.backend.complete_ok(0);
  ASSERT_EQ(rig.backend.issued.size(), 2u);
  EXPECT_EQ(rig.backend.issued[1].op.route, Route::kNvmeFetch);
  EXPECT_TRUE(t0->done.load());
  EXPECT_FALSE(t1->done.load());

  rig.backend.complete_ok(1);
  ASSERT_EQ(rig.backend.issued.size(), 3u);
  EXPECT_EQ(rig.backend.issued[2].op.offset, 4096u);
  rig.backend.complete_ok(2);
  rig.sched.wait(t1);
  rig.sched.wait(tl);

  const TransferScheduler::Stats s = rig.sched.stats();
  EXPECT_EQ(s.scheduled, 3u);
  EXPECT_EQ(s.backend_ops, 3u);
  EXPECT_EQ(s.preemptions, 1u);
  EXPECT_EQ(s.merged_ops, 0u);
  EXPECT_EQ(s.starvation_yields, 0u);
}

TEST(MoveSched, StarvationBoundForcesBulkThrough) {
  std::vector<std::byte> buf(7 * 1024);
  auto seg = [&](int i) { return buf.data() + i * 1024; };

  TransferScheduler::Config cfg = serial_cfg();
  cfg.starvation_bound = 2;
  SchedRig rig(cfg);

  // Bulk blocker, then four latency fetches and two more bulk spills queue.
  std::vector<TransferScheduler::Ticket> ts;
  ts.push_back(rig.sched.submit(Route::kNvmeSpill, TransferClass::kBulk,
                                0 * 4096, seg(0), 1024));
  for (int i = 0; i < 4; ++i) {
    ts.push_back(rig.sched.submit(Route::kNvmeFetch, TransferClass::kLatency,
                                  (1 + i) * 4096, seg(1 + i), 1024));
  }
  ts.push_back(rig.sched.submit(Route::kNvmeSpill, TransferClass::kBulk,
                                5 * 4096, seg(5), 1024));
  ts.push_back(rig.sched.submit(Route::kNvmeSpill, TransferClass::kBulk,
                                6 * 4096, seg(6), 1024));

  // Drive to completion one op at a time and record the issue order.
  std::vector<Route> order;
  for (std::size_t i = 0; i < rig.backend.issued.size(); ++i) {
    order.push_back(rig.backend.issued[i].op.route);
    rig.backend.complete_ok(i);
  }
  for (const auto& t : ts) rig.sched.wait(t);

  // Two latency issues, then the bound forces a bulk through, then the
  // remaining latency pair, then bulk drains.
  const std::vector<Route> want = {
      Route::kNvmeSpill, Route::kNvmeFetch, Route::kNvmeFetch,
      Route::kNvmeSpill, Route::kNvmeFetch, Route::kNvmeFetch,
      Route::kNvmeSpill};
  EXPECT_EQ(order, want);

  const TransferScheduler::Stats s = rig.sched.stats();
  EXPECT_EQ(s.starvation_yields, 1u);
  EXPECT_EQ(s.preemptions, 4u);
}

// ---------------------------------------------------------------------------
// 2. Coalescing: merge on issue, split on completion.

TEST(MoveSched, AdjacentSpillsMergeAndGather) {
  constexpr std::size_t kSeg = 1024;
  std::vector<std::vector<std::byte>> src;
  for (unsigned i = 0; i < 5; ++i) src.push_back(pattern_bytes(kSeg, i));

  TransferScheduler::Config cfg = serial_cfg();
  cfg.coalesce = true;
  SchedRig rig(cfg);

  // First spill issues solo (empty queue); the next four, exactly adjacent,
  // pile up behind it.
  std::vector<TransferScheduler::Ticket> ts;
  for (std::size_t i = 0; i < src.size(); ++i) {
    ts.push_back(rig.sched.submit(Route::kNvmeSpill, TransferClass::kBulk,
                                  i * kSeg, src[i].data(), kSeg));
  }
  ASSERT_EQ(rig.backend.issued.size(), 1u);
  rig.backend.complete_ok(0);

  // The queued run merged into one backend request whose payload is the
  // gather of the four sources, in offset order.
  ASSERT_EQ(rig.backend.issued.size(), 2u);
  const FakeBackend::Issued& merged = rig.backend.issued[1];
  EXPECT_EQ(merged.op.route, Route::kNvmeSpill);
  EXPECT_EQ(merged.op.offset, kSeg);
  EXPECT_EQ(merged.op.len, 4 * kSeg);
  std::vector<std::byte> want;
  for (std::size_t i = 1; i < src.size(); ++i) {
    want.insert(want.end(), src[i].begin(), src[i].end());
  }
  EXPECT_EQ(merged.spill_payload, want);

  // One completion finishes all four original tickets.
  EXPECT_FALSE(ts[1]->done.load());
  rig.backend.complete_ok(1);
  for (const auto& t : ts) rig.sched.wait(t);

  const TransferScheduler::Stats s = rig.sched.stats();
  EXPECT_EQ(s.scheduled, 5u);
  EXPECT_EQ(s.backend_ops, 2u);
  EXPECT_EQ(s.merged_ops, 1u);
  EXPECT_EQ(s.coalesced_transfers, 4u);
}

TEST(MoveSched, AdjacentFetchesMergeAndScatter) {
  constexpr std::size_t kSeg = 1024;
  std::vector<std::vector<std::byte>> dst(5, std::vector<std::byte>(kSeg));

  TransferScheduler::Config cfg = serial_cfg();
  cfg.coalesce = true;
  SchedRig rig(cfg);

  std::vector<TransferScheduler::Ticket> ts;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    ts.push_back(rig.sched.submit(Route::kNvmeFetch, TransferClass::kLatency,
                                  i * kSeg, dst[i].data(), kSeg));
  }
  ASSERT_EQ(rig.backend.issued.size(), 1u);
  rig.backend.complete_ok(0);

  // Fill the merged request's bounce range as "the device" would, then
  // complete: the scheduler must scatter each segment to its own buffer.
  ASSERT_EQ(rig.backend.issued.size(), 2u);
  const FakeBackend::Issued& merged = rig.backend.issued[1];
  ASSERT_EQ(merged.op.len, 4 * kSeg);
  const std::vector<std::byte> disk = pattern_bytes(4 * kSeg, 99);
  std::copy(disk.begin(), disk.end(), merged.op.data);
  rig.backend.complete_ok(1);
  for (const auto& t : ts) rig.sched.wait(t);

  for (std::size_t i = 1; i < dst.size(); ++i) {
    const std::vector<std::byte> want(disk.begin() + (i - 1) * kSeg,
                                      disk.begin() + i * kSeg);
    EXPECT_EQ(dst[i], want) << "segment " << i;
  }
  EXPECT_EQ(rig.sched.stats().coalesced_transfers, 4u);
}

TEST(MoveSched, GapsOverlapsAndRouteChangesNeverMerge) {
  constexpr std::size_t kSeg = 1024;
  // Each case: queue two probes behind a blocker, free the slot, and check
  // the next issue is a solo op (batch of one), not a merge.
  struct Probe {
    Route route;
    std::uint64_t offset;
  };
  struct Case {
    const char* name;
    Probe a, b;
  } cases[] = {
      {"gap", {Route::kNvmeSpill, 0}, {Route::kNvmeSpill, 2 * kSeg}},
      {"overlap", {Route::kNvmeSpill, 0}, {Route::kNvmeSpill, kSeg / 2}},
      {"duplicate", {Route::kNvmeSpill, 0}, {Route::kNvmeSpill, 0}},
      {"cross-route", {Route::kNvmeSpill, 0}, {Route::kNvmeFetch, kSeg}},
  };
  for (const Case& c : cases) {
    std::vector<std::byte> blocker(kSeg), pa(kSeg), pb(kSeg);
    TransferScheduler::Config cfg = serial_cfg();
    cfg.coalesce = true;
    SchedRig rig(cfg);

    const TransferScheduler::Ticket tb = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, 1u << 20, blocker.data(),
        kSeg);
    const TransferScheduler::Ticket ta = rig.sched.submit(
        c.a.route, TransferClass::kBulk, c.a.offset, pa.data(), kSeg);
    const TransferScheduler::Ticket tbb = rig.sched.submit(
        c.b.route, TransferClass::kBulk, c.b.offset, pb.data(), kSeg);
    rig.backend.complete_ok(0);
    ASSERT_EQ(rig.backend.issued.size(), 2u) << c.name;
    EXPECT_EQ(rig.backend.issued[1].op.len, kSeg) << c.name;
    EXPECT_EQ(rig.backend.issued[1].op.offset, c.a.offset) << c.name;
    rig.backend.complete_ok(1);
    ASSERT_EQ(rig.backend.issued.size(), 3u) << c.name;
    rig.backend.complete_ok(2);
    rig.sched.wait(tb);
    rig.sched.wait(ta);
    rig.sched.wait(tbb);
    EXPECT_EQ(rig.sched.stats().merged_ops, 0u) << c.name;
    EXPECT_EQ(rig.sched.stats().coalesced_transfers, 0u) << c.name;
  }
}

TEST(MoveSched, SegmentAndMergeByteCapsBoundTheBatch) {
  constexpr std::size_t kSeg = 1024;
  // A transfer above coalesce_segment_bytes never participates.
  {
    std::vector<std::byte> blocker(kSeg), big(4 * kSeg), small(kSeg);
    TransferScheduler::Config cfg = serial_cfg();
    cfg.coalesce = true;
    cfg.coalesce_segment_bytes = kSeg;
    SchedRig rig(cfg);
    const TransferScheduler::Ticket tb = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, 1u << 20, blocker.data(),
        kSeg);
    const TransferScheduler::Ticket t0 = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, 0, big.data(), big.size());
    const TransferScheduler::Ticket t1 = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, big.size(), small.data(),
        small.size());
    rig.backend.complete_ok(0);
    ASSERT_EQ(rig.backend.issued.size(), 2u);
    EXPECT_EQ(rig.backend.issued[1].op.len, big.size());  // solo
    rig.backend.complete_ok(1);
    ASSERT_EQ(rig.backend.issued.size(), 3u);
    rig.backend.complete_ok(2);
    rig.sched.wait(tb);
    rig.sched.wait(t0);
    rig.sched.wait(t1);
    EXPECT_EQ(rig.sched.stats().merged_ops, 0u);
  }
  // max_merge_bytes caps how much one backend request carries.
  {
    std::vector<std::byte> blocker(kSeg), s0(kSeg), s1(kSeg), s2(kSeg);
    TransferScheduler::Config cfg = serial_cfg();
    cfg.coalesce = true;
    cfg.coalesce_segment_bytes = kSeg;
    cfg.max_merge_bytes = 2 * kSeg;
    SchedRig rig(cfg);
    const TransferScheduler::Ticket tb = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, 1u << 20, blocker.data(),
        kSeg);
    const TransferScheduler::Ticket t0 = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, 0 * kSeg, s0.data(), kSeg);
    const TransferScheduler::Ticket t1 = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, 1 * kSeg, s1.data(), kSeg);
    const TransferScheduler::Ticket t2 = rig.sched.submit(
        Route::kNvmeSpill, TransferClass::kBulk, 2 * kSeg, s2.data(), kSeg);
    rig.backend.complete_ok(0);
    ASSERT_EQ(rig.backend.issued.size(), 2u);
    EXPECT_EQ(rig.backend.issued[1].op.len, 2 * kSeg);  // capped merge
    rig.backend.complete_ok(1);
    ASSERT_EQ(rig.backend.issued.size(), 3u);
    EXPECT_EQ(rig.backend.issued[2].op.len, kSeg);  // the remainder
    rig.backend.complete_ok(2);
    rig.sched.wait(tb);
    rig.sched.wait(t0);
    rig.sched.wait(t1);
    rig.sched.wait(t2);
    const TransferScheduler::Stats s = rig.sched.stats();
    EXPECT_EQ(s.merged_ops, 1u);
    EXPECT_EQ(s.coalesced_transfers, 2u);
  }
}

// ---------------------------------------------------------------------------
// 3. Token buckets under the synthetic clock.

TEST(MoveSched, TokenBucketThrottlesAndRefillsOnSyntheticTime) {
  constexpr std::size_t kLen = 1000;
  std::vector<std::byte> s0(kLen), s1(kLen), s2(kLen), f0(kLen);

  TransferScheduler::Config cfg;
  cfg.coalesce = false;
  cfg.max_inflight = 8;
  // 1 byte per nanosecond on the spill route; burst covers exactly one op.
  cfg.rate_bytes_per_sec[static_cast<int>(Route::kNvmeSpill)] =
      1'000'000'000ull;
  cfg.burst_bytes = kLen;
  SchedRig rig(cfg);

  // Burst pays for the first op; the second rides the >= 0 debt boundary;
  // the third is throttled.
  const TransferScheduler::Ticket t0 = rig.sched.submit(
      Route::kNvmeSpill, TransferClass::kBulk, 0, s0.data(), kLen);
  const TransferScheduler::Ticket t1 = rig.sched.submit(
      Route::kNvmeSpill, TransferClass::kBulk, 4096, s1.data(), kLen);
  const TransferScheduler::Ticket t2 = rig.sched.submit(
      Route::kNvmeSpill, TransferClass::kBulk, 8192, s2.data(), kLen);
  EXPECT_EQ(rig.backend.issued.size(), 2u);

  // The unlimited fetch route is unaffected by spill debt.
  const TransferScheduler::Ticket tf = rig.sched.submit(
      Route::kNvmeFetch, TransferClass::kLatency, 1u << 20, f0.data(), kLen);
  EXPECT_EQ(rig.backend.issued.size(), 3u);

  // kick() without time passing changes nothing; one nanosecond short of
  // the refill still throttles; the exact refill releases the op.
  rig.sched.kick();
  EXPECT_EQ(rig.backend.issued.size(), 3u);
  rig.clock.advance(kLen - 1);
  rig.sched.kick();
  EXPECT_EQ(rig.backend.issued.size(), 3u);
  rig.clock.advance(1);
  rig.sched.kick();
  ASSERT_EQ(rig.backend.issued.size(), 4u);
  EXPECT_EQ(rig.backend.issued[3].op.offset, 8192u);

  for (std::size_t i = 0; i < rig.backend.issued.size(); ++i) {
    rig.backend.complete_ok(i);
  }
  rig.sched.wait(t0);
  rig.sched.wait(t1);
  rig.sched.wait(t2);
  rig.sched.wait(tf);

  // Queue-wait accounting in synthetic time: only the throttled op waited,
  // and it waited exactly the refill interval.
  const TransferScheduler::Stats s = rig.sched.stats();
  EXPECT_EQ(s.queue_ns[static_cast<int>(TransferClass::kBulk)], kLen);
  EXPECT_EQ(s.queue_ns[static_cast<int>(TransferClass::kLatency)], 0u);
}

TEST(MoveSched, ZeroLengthTransfersCompleteWithoutBackend) {
  SchedRig rig(serial_cfg());
  const TransferScheduler::Ticket t = rig.sched.submit(
      Route::kNvmeFetch, TransferClass::kLatency, 0, nullptr, 0);
  EXPECT_TRUE(t->done.load());
  rig.sched.wait(t);
  EXPECT_EQ(rig.backend.issued.size(), 0u);
  EXPECT_EQ(rig.sched.stats().backend_ops, 0u);
}

// ---------------------------------------------------------------------------
// 4. Real-I/O accounting: bytes/transfers per original handle, exactly once,
//    independent of coalescing. (Pins the note_issue/note_seconds audit.)

class MoveSchedIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().clear();
    dir_ = fs::temp_directory_path() /
           ("zi_sched_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

/// Rate=1 B/s with zero burst lets exactly one op through on the debt
/// boundary and queues the rest (a refill would take seconds); drain() then
/// bypasses the bucket and issues the queued run — merged when coalescing
/// is on. Deterministic without any clock control.
TransferScheduler::Config throttled_cfg(Route r, bool coalesce) {
  TransferScheduler::Config cfg;
  cfg.coalesce = coalesce;
  cfg.rate_bytes_per_sec[static_cast<int>(r)] = 1;
  cfg.burst_bytes = 0;
  return cfg;
}

TEST_F(MoveSchedIoTest, CoalescedSpillsAccountPerHandleExactlyOnce) {
  constexpr std::size_t kSeg = 4096;
  constexpr std::size_t kN = 8;
  std::vector<std::vector<std::byte>> src;
  for (unsigned i = 0; i < kN; ++i) src.push_back(pattern_bytes(kSeg, i));

  auto run = [&](bool coalesce) {
    AioEngine aio;
    NvmeStore store(aio, dir_ / (coalesce ? "on.bin" : "off.bin"), 1 << 20);
    PinnedBufferPool pool(kSeg, 2);
    DataMover mover(store, pool,
                    throttled_cfg(Route::kNvmeSpill, coalesce));
    Extent e = store.allocate(kN * kSeg);

    std::vector<TransferHandle> hs;
    for (std::size_t i = 0; i < kN; ++i) {
      hs.push_back(mover.spill_nvme(e, src[i], i * kSeg));
    }
    mover.sched().drain();
    for (TransferHandle& h : hs) {
      h.wait();
      EXPECT_TRUE(h.ok());
    }

    const DataMover::Stats s1 = mover.stats();
    // Per-original-handle accounting: every spill counted once, no matter
    // how many backend requests actually carried the bytes.
    EXPECT_EQ(s1.route(Route::kNvmeSpill).transfers, kN);
    EXPECT_EQ(s1.route(Route::kNvmeSpill).bytes, kN * kSeg);
    EXPECT_EQ(s1.sched.scheduled, kN);
    if (coalesce) {
      // One solo op on the debt boundary + one merged op from drain().
      EXPECT_EQ(s1.sched.backend_ops, 2u);
      EXPECT_EQ(s1.sched.merged_ops, 1u);
      EXPECT_EQ(s1.sched.coalesced_transfers, kN - 1);
      EXPECT_EQ(aio.stats().requests, 2u);
    } else {
      EXPECT_EQ(s1.sched.backend_ops, kN);
      EXPECT_EQ(s1.sched.merged_ops, 0u);
      EXPECT_EQ(aio.stats().requests, kN);
    }

    // A second wait() must not double-count anything.
    hs[0].wait();
    const DataMover::Stats s2 = mover.stats();
    EXPECT_EQ(s2.route(Route::kNvmeSpill).transfers, kN);
    EXPECT_EQ(s2.route(Route::kNvmeSpill).bytes, kN * kSeg);
    EXPECT_EQ(s2.route(Route::kNvmeSpill).seconds,
              s1.route(Route::kNvmeSpill).seconds);

    // What landed on "disk" is the same bytes the handles promised.
    std::vector<std::byte> back(kN * kSeg);
    mover.fetch_nvme_sync(e, back);
    return back;
  };

  const std::vector<std::byte> with = run(/*coalesce=*/true);
  const std::vector<std::byte> without = run(/*coalesce=*/false);
  EXPECT_EQ(with, without);
  std::vector<std::byte> want;
  for (const auto& s : src) want.insert(want.end(), s.begin(), s.end());
  EXPECT_EQ(with, want);
}

// ---------------------------------------------------------------------------
// 5. Fault injection through merged requests (the split-on-partial-failure
//    path). num_workers=1 makes AIO sub-requests execute in submission
//    order, so ordinal-addressed fault rules pick deterministic victims.

TEST_F(MoveSchedIoTest, MergedFetchFailureFallsBackPerSegment) {
  constexpr std::size_t kSeg = 4096;
  constexpr std::size_t kN = 8;

  AioConfig acfg;
  acfg.num_workers = 1;
  acfg.max_retries = 0;  // surface injected errors instead of masking them
  AioEngine aio(acfg);
  NvmeStore store(aio, dir_ / "faults.bin", 1 << 20);
  PinnedBufferPool pool(kSeg, 2);
  DataMover mover(store, pool, throttled_cfg(Route::kNvmeFetch, true));
  Extent e = store.allocate(kN * kSeg);

  std::vector<std::vector<std::byte>> src;
  for (unsigned i = 0; i < kN; ++i) src.push_back(pattern_bytes(kSeg, i));
  for (std::size_t i = 0; i < kN; ++i) {
    TransferHandle h = mover.spill_nvme(e, src[i], i * kSeg);
    h.wait();  // spill route is unthrottled here; no faults configured yet
  }

  // aio_read ordinals: #0 the solo first fetch, #1 the merged request from
  // drain(), #2.. the per-segment fallback re-issues. `after=1,count=1`
  // fails exactly the merged request; every fallback succeeds.
  FaultInjector::instance().configure("seed=3;aio_read:error,after=1,count=1");
  std::vector<std::vector<std::byte>> dst(kN, std::vector<std::byte>(kSeg));
  std::vector<TransferHandle> hs;
  for (std::size_t i = 0; i < kN; ++i) {
    hs.push_back(mover.fetch_nvme(e, dst[i], i * kSeg));
  }
  mover.sched().drain();
  for (std::size_t i = 0; i < kN; ++i) {
    hs[i].wait();
    EXPECT_TRUE(hs[i].ok()) << "handle " << i;
    EXPECT_EQ(dst[i], src[i]) << "handle " << i;
  }

  const TransferScheduler::Stats s = mover.sched().stats();
  EXPECT_EQ(s.merged_ops, 1u);
  EXPECT_EQ(s.coalesced_transfers, kN - 1);
  EXPECT_EQ(s.fallback_ops, kN - 1);
}

TEST_F(MoveSchedIoTest, FallbackFailuresHitExactlyTheDrawnHandles) {
  constexpr std::size_t kSeg = 4096;
  constexpr std::size_t kN = 8;

  std::vector<std::vector<std::byte>> src;
  for (unsigned i = 0; i < kN; ++i) src.push_back(pattern_bytes(kSeg, i));

  // Runs the merged-then-split fetch under `after=1,count=3`: ordinal #1
  // (the merged request) plus ordinals #2 and #3 (the first two fallback
  // segments) fail. Returns each handle's error_code.
  auto run = [&](const fs::path& file) {
    AioConfig acfg;
    acfg.num_workers = 1;
    acfg.max_retries = 0;
    AioEngine aio(acfg);
    NvmeStore store(aio, file, 1 << 20);
    PinnedBufferPool pool(kSeg, 2);
    DataMover mover(store, pool, throttled_cfg(Route::kNvmeFetch, true));
    Extent e = store.allocate(kN * kSeg);
    for (std::size_t i = 0; i < kN; ++i) {
      TransferHandle h = mover.spill_nvme(e, src[i], i * kSeg);
      h.wait();
    }

    FaultInjector::instance().clear();
    FaultInjector::instance().configure(
        "seed=3;aio_read:error,after=1,count=3");
    std::vector<std::vector<std::byte>> dst(kN,
                                            std::vector<std::byte>(kSeg));
    std::vector<TransferHandle> hs;
    for (std::size_t i = 0; i < kN; ++i) {
      hs.push_back(mover.fetch_nvme(e, dst[i], i * kSeg));
    }
    mover.sched().drain();

    std::vector<int> errors;
    for (std::size_t i = 0; i < kN; ++i) {
      if (hs[i].ok()) {
        EXPECT_NO_THROW(hs[i].wait());
        errors.push_back(0);
      } else {
        EXPECT_THROW(hs[i].wait(), RetriesExhaustedError) << "handle " << i;
        errors.push_back(hs[i].error_code());
        EXPECT_NE(hs[i].error_code(), 0);
      }
    }
    // Cross-handle isolation: every handle that reported ok really holds
    // its own bytes, untouched by its failed neighbours.
    for (std::size_t i = 0; i < kN; ++i) {
      if (errors[i] == 0) {
        EXPECT_EQ(dst[i], src[i]) << "handle " << i;
      }
    }
    FaultInjector::instance().clear();
    return errors;
  };

  const std::vector<int> first = run(dir_ / "a.bin");
  // The failures are the merged request's first two segments — handles 1
  // and 2 (handle 0 went out solo on the debt boundary) — and nothing else.
  std::vector<int> nonzero;
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i] != 0) nonzero.push_back(static_cast<int>(i));
  }
  EXPECT_EQ(nonzero, (std::vector<int>{1, 2}));

  // Same seed, same spec, fresh store: bitwise-identical outcome vector.
  const std::vector<int> second = run(dir_ / "b.bin");
  EXPECT_EQ(first, second);
}

TEST_F(MoveSchedIoTest, ShortReadsUnderCoalescingStayBitExact) {
  constexpr std::size_t kSeg = 4096;
  constexpr std::size_t kN = 6;

  AioEngine aio;  // default retries: shorts are resumed, not failed
  NvmeStore store(aio, dir_ / "short.bin", 1 << 20);
  PinnedBufferPool pool(kSeg, 2);
  DataMover mover(store, pool, throttled_cfg(Route::kNvmeFetch, true));
  Extent e = store.allocate(kN * kSeg);

  std::vector<std::vector<std::byte>> src;
  for (unsigned i = 0; i < kN; ++i) src.push_back(pattern_bytes(kSeg, i));
  for (std::size_t i = 0; i < kN; ++i) {
    TransferHandle h = mover.spill_nvme(e, src[i], i * kSeg);
    h.wait();
  }

  FaultInjector::instance().configure("seed=5;aio_read:short,p=1");
  std::vector<std::vector<std::byte>> dst(kN, std::vector<std::byte>(kSeg));
  std::vector<TransferHandle> hs;
  for (std::size_t i = 0; i < kN; ++i) {
    hs.push_back(mover.fetch_nvme(e, dst[i], i * kSeg));
  }
  mover.sched().drain();
  for (std::size_t i = 0; i < kN; ++i) {
    hs[i].wait();
    EXPECT_TRUE(hs[i].ok());
    EXPECT_EQ(dst[i], src[i]) << "handle " << i;
  }
  EXPECT_GE(mover.sched().stats().merged_ops, 1u);
  EXPECT_EQ(mover.sched().stats().fallback_ops, 0u);  // shorts never fail
}

// ---------------------------------------------------------------------------
// 6. Concurrency: many producers mixing classes while a kicker hammers the
//    lock paths. Run under TSan via the `concurrency` ctest label;
//    correctness signal is per-thread roundtrip bit-exactness.

TEST_F(MoveSchedIoTest, ConcurrentMixedProducersRoundtripBitExact) {
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  constexpr std::size_t kSeg = 8 * 1024;

  AioEngine aio;
  NvmeStore store(aio, dir_ / "stress.bin", 8 << 20);
  PinnedBufferPool pool(1 << 16, 4);
  TransferScheduler::Config cfg;
  cfg.max_inflight = 2;  // force queueing so priorities/coalescing engage
  DataMover mover(store, pool, cfg);

  std::vector<Extent> extents;
  for (int t = 0; t < kThreads; ++t) extents.push_back(store.allocate(kSeg));

  std::atomic<bool> stop{false};
  std::thread kicker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      mover.sched().kick();
      (void)mover.stats();
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const auto src =
            pattern_bytes(kSeg, static_cast<unsigned>(t * 1000 + it));
        const TransferClass cls =
            (it % 2 == 0) ? TransferClass::kLatency : TransferClass::kBulk;
        TransferHandle w = mover.spill_nvme(extents[t], src, 0, cls);
        w.wait();
        EXPECT_TRUE(w.ok());
        std::vector<std::byte> back(kSeg);
        TransferHandle r = mover.fetch_nvme(extents[t], back, 0, cls);
        r.wait();
        EXPECT_EQ(back, src) << "thread " << t << " iter " << it;
      }
    });
  }
  for (std::thread& p : producers) p.join();
  stop.store(true, std::memory_order_relaxed);
  kicker.join();
  mover.sched().drain();

  const DataMover::Stats s = mover.stats();
  EXPECT_EQ(s.route(Route::kNvmeSpill).transfers,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.route(Route::kNvmeFetch).transfers,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.sched.scheduled,
            2u * static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace zi
