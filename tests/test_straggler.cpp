// Straggler-aware ranks: online slow-rank detection, weighted
// repartitioning, and elastic rebalance on restart.
//
// Unit coverage first: the largest-remainder apportioner, weighted
// ShardSpec invariants and the compact/expand slot<->flat transforms, the
// StragglerDetector state machine, the WorldHealth max-gap watermark and
// EWMA mirror, and the binary result-payload codec.
//
// The headline scenario at the bottom is the paper's operational story for
// heterogeneous workers: a 4-rank ZeRO-3 + NVMe world develops a straggler
// (rank 2 slowed by an injected bounded stall at every collective entry),
// the deterministic busy-time detector convicts it within
// ZI_STRAGGLER_STEPS, the attempt winds down *cleanly* (no poison, no rank
// lost), and the elastic supervisor relaunches the SAME world with
// RankWeights ~ 1/observed-step-time — smaller shards and fewer sequences
// on the slow rank. Because weighted layouts are exact re-partitionings and
// reductions keep their rank order, the resumed trajectory must be
// *bit-identical* to a control world launched statically with the very same
// weights.
//
// Both the stall strength and its ordinal window are calibrated, not
// guessed: a probe run with a never-firing rule counts collective entries
// per rank AND measures the world's typical busy time via the detector's
// own EWMAs, so the injected slowdown lands on steps 4-5 and dominates the
// median by a known factor on any machine speed.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.hpp"
#include "core/ckpt_io.hpp"
#include "core/elastic.hpp"
#include "core/partition.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/tokenizer.hpp"
#include "model/gpt.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Apportionment: deterministic largest-remainder splits.

TEST(Apportion, SplitsProportionallyWithLargestRemainder) {
  // Quotas 3.5 / 1.75 / 1.75: floors assign 5, the two leftovers go to the
  // largest remainders (ranks 1 and 2).
  const auto parts = apportion(7, {2.0, 1.0, 1.0});
  EXPECT_EQ(parts, (std::vector<std::int64_t>{3, 2, 2}));
}

TEST(Apportion, RemainderTiesGoToTheLowerRank) {
  // Quotas 2.5 each: four equal remainders, two leftovers -> ranks 0, 1.
  const auto parts = apportion(10, {1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(parts, (std::vector<std::int64_t>{3, 3, 2, 2}));
}

TEST(Apportion, ZeroWeightRanksGetNothing) {
  const auto parts = apportion(5, {0.0, 1.0});
  EXPECT_EQ(parts, (std::vector<std::int64_t>{0, 5}));
}

TEST(Apportion, DegenerateWeightsFallBackToUniform) {
  const auto parts = apportion(7, {0.0, 0.0, 0.0});
  EXPECT_EQ(parts, (std::vector<std::int64_t>{3, 2, 2}));
}

TEST(Apportion, SumIsExactForAwkwardRatios) {
  const RankWeights w{1.37, 0.001, 2.9, 0.7};
  for (std::int64_t total : {1, 2, 3, 17, 100, 1023}) {
    const auto parts = apportion(total, w);
    std::int64_t sum = 0;
    for (const std::int64_t p : parts) sum += p;
    EXPECT_EQ(sum, total) << "total " << total;
  }
}

TEST(ApportionBatches, EveryRankGetsAtLeastOneSequence) {
  // An extreme weight skew would zero out ranks 1-3; the batch apportioner
  // lifts them to one sequence each, taken from the dominant rank.
  const auto parts = apportion_batches(4, {100.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(parts, (std::vector<std::int64_t>{1, 1, 1, 1}));
  const auto skewed = apportion_batches(8, {10.0, 0.0, 1.0});
  EXPECT_EQ(skewed.size(), 3u);
  std::int64_t sum = 0;
  for (std::size_t r = 0; r < skewed.size(); ++r) {
    EXPECT_GE(skewed[r], 1) << "rank " << r;
    sum += skewed[r];
  }
  EXPECT_EQ(sum, 8);
}

// ---------------------------------------------------------------------------
// Weighted shard layout and the slot<->flat transforms.

TEST(WeightedShardSpec, ChunksCoverTheParameterExactly) {
  const ShardSpec spec = make_shard_spec(103, 4, {2.0, 1.0, 1.0, 0.5});
  ASSERT_FALSE(spec.uniform());
  ASSERT_EQ(spec.chunk.size(), 4u);
  ASSERT_EQ(spec.prefix.size(), 5u);
  EXPECT_EQ(spec.prefix.front(), 0);
  EXPECT_EQ(spec.prefix.back(), 103);
  std::int64_t sum = 0;
  std::int64_t max_chunk = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(spec.begin(r), spec.prefix[static_cast<std::size_t>(r)]);
    EXPECT_EQ(spec.valid_elems(r), spec.chunk[static_cast<std::size_t>(r)]);
    sum += spec.chunk[static_cast<std::size_t>(r)];
    max_chunk = std::max(max_chunk, spec.chunk[static_cast<std::size_t>(r)]);
  }
  EXPECT_EQ(sum, 103);
  // Collectives stay equal-slot: the slot is the max chunk and the padded
  // buffer covers world slots.
  EXPECT_EQ(spec.shard_elems, max_chunk);
  EXPECT_EQ(spec.padded_numel(), max_chunk * 4);
  // The heavy rank really gets the bigger shard.
  EXPECT_GT(spec.chunk[0], spec.chunk[3]);
}

TEST(WeightedShardSpec, EmptyWeightsAreTheUniformLayout) {
  const ShardSpec spec = make_shard_spec(10, 3, RankWeights{});
  EXPECT_TRUE(spec.uniform());
  EXPECT_EQ(spec.shard_elems, 4);  // ceil(10/3)
  EXPECT_EQ(spec.valid_elems(2), 2);
}

TEST(WeightedShardSpec, CompactAndExpandAreExactInverses) {
  const ShardSpec spec = make_shard_spec(23, 3, {3.0, 1.0, 2.0});
  ASSERT_FALSE(spec.uniform());
  // Build the slot layout an allgather would produce: rank r's slot holds
  // its chunk of the flat sequence 1000, 1001, ... with a zero tail.
  std::vector<float> slots(static_cast<std::size_t>(spec.padded_numel()), 0.0f);
  for (int r = 0; r < spec.world; ++r) {
    for (std::int64_t i = 0; i < spec.valid_elems(r); ++i) {
      slots[static_cast<std::size_t>(r * spec.shard_elems + i)] =
          1000.0f + static_cast<float>(spec.begin(r) + i);
    }
  }
  const std::vector<float> slots_orig = slots;

  compact_gathered<float>(spec, slots);
  for (std::int64_t i = 0; i < spec.numel; ++i) {
    ASSERT_EQ(slots[static_cast<std::size_t>(i)],
              1000.0f + static_cast<float>(i))
        << "flat index " << i;
  }

  expand_to_slots<float>(spec, slots);
  EXPECT_EQ(slots, slots_orig) << "expand did not invert compact";
}

TEST(WeightedShardSpec, RoundTripSurvivesAZeroSizedChunk) {
  // Weight 0 on rank 1: its slot must come back all-zero and the flat
  // layout must still be contiguous.
  const ShardSpec spec = make_shard_spec(9, 3, {1.0, 0.0, 1.0});
  ASSERT_EQ(spec.valid_elems(1), 0);
  std::vector<int> slots(static_cast<std::size_t>(spec.padded_numel()), -1);
  for (int r = 0; r < spec.world; ++r) {
    for (std::int64_t i = 0; i < spec.valid_elems(r); ++i) {
      slots[static_cast<std::size_t>(r * spec.shard_elems + i)] =
          static_cast<int>(spec.begin(r) + i);
    }
    for (std::int64_t i = spec.valid_elems(r); i < spec.shard_elems; ++i) {
      slots[static_cast<std::size_t>(r * spec.shard_elems + i)] = 0;
    }
  }
  const std::vector<int> slots_orig = slots;
  compact_gathered<int>(spec, slots);
  for (std::int64_t i = 0; i < spec.numel; ++i) {
    ASSERT_EQ(slots[static_cast<std::size_t>(i)], static_cast<int>(i));
  }
  expand_to_slots<int>(spec, slots);
  EXPECT_EQ(slots, slots_orig);
}

// ---------------------------------------------------------------------------
// The detector state machine.

/// observe() takes a span (the trainer feeds it an allgather buffer); the
/// unit tests feed literals through a materialized vector.
int feed(StragglerDetector& d, const std::vector<double>& step_seconds) {
  return d.observe(step_seconds);
}

TEST(StragglerDetectorTest, UniformWorldNeverConvicts) {
  StragglerDetector d(4, 2.0, 3);
  const std::vector<double> even{0.1, 0.1, 0.1, 0.1};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(d.observe(even), -1) << "step " << i;
  }
}

TEST(StragglerDetectorTest, SustainedSlowRankConvictsAfterExactlyNSteps) {
  StragglerDetector d(3, 3.0, 2);
  const std::vector<double> even{0.1, 0.1, 0.1};
  EXPECT_EQ(d.observe(even), -1);  // seed
  EXPECT_EQ(d.observe(even), -1);
  // Rank 1 jumps to 10x: EWMA 5.05 > 3 x median(0.1) -> streak 1.
  EXPECT_EQ(feed(d, {0.1, 10.0, 0.1}), -1);
  // Second consecutive over-threshold step -> verdict.
  EXPECT_EQ(feed(d, {0.1, 10.0, 0.1}), 1);
}

TEST(StragglerDetectorTest, OneStepBlipResetsTheStreak) {
  StragglerDetector d(3, 3.0, 2);
  const std::vector<double> even{0.1, 0.1, 0.1};
  d.observe(even);
  // A mild spike: EWMA 0.5*0.1 + 0.5*0.7 = 0.4 > 3 x median(0.1) -> streak
  // 1, but one normal step decays it to 0.25 < 0.3, so the streak resets.
  EXPECT_EQ(feed(d, {0.1, 0.7, 0.1}), -1);  // streak 1
  EXPECT_EQ(d.observe(even), -1);           // 0.25 < threshold: reset
  // A later lone spike must start a fresh streak, not complete the old one.
  EXPECT_EQ(feed(d, {0.1, 0.7, 0.1}), -1);  // 0.475 > 0.3: streak 1 again
  EXPECT_EQ(d.observe(even), -1);           // 0.2875 < 0.3: reset again
}

TEST(StragglerDetectorTest, VerdictLatchesForever) {
  StragglerDetector d(2, 2.0, 1);
  feed(d, {0.1, 0.1});
  ASSERT_EQ(feed(d, {0.1, 5.0}), 1);
  // Even a fully recovered world keeps returning the latched verdict.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(feed(d, {0.1, 0.1}), 1);
  }
}

TEST(StragglerDetectorTest, LowestQualifyingRankWinsATie) {
  StragglerDetector d(4, 2.0, 1);
  feed(d, {0.1, 0.1, 0.1, 0.1});
  // Ranks 1 and 3 cross the threshold on the same observation.
  EXPECT_EQ(feed(d, {0.1, 8.0, 0.1, 8.0}), 1);
}

TEST(StragglerDetectorTest, DisabledConfigurationsNeverConvict) {
  StragglerDetector off(3, 0.0, 3);  // factor 0 = off
  StragglerDetector solo(1, 2.0, 1);  // no peers, no median
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(feed(off, {0.1, 99.0, 0.1}), -1);
    EXPECT_EQ(feed(solo, {99.0}), -1);
  }
}

TEST(StragglerDetectorTest, EwmaSeedsWithTheFirstObservation) {
  StragglerDetector d(2, 0.0, 1);
  feed(d, {0.4, 0.8});
  ASSERT_EQ(d.ewma().size(), 2u);
  EXPECT_DOUBLE_EQ(d.ewma()[0], 0.4);
  EXPECT_DOUBLE_EQ(d.ewma()[1], 0.8);
  feed(d, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(d.ewma()[0], 0.2);
  EXPECT_DOUBLE_EQ(d.ewma()[1], 0.4);
}

// ---------------------------------------------------------------------------
// WorldHealth: the max-gap watermark behind the StepReport fix, the EWMA
// mirror, and the non-poisoning straggler record.

TEST(WorldHealthStraggler, MaxGapWatermarkRemembersClosedGaps) {
  WorldHealth h(2);
  h.beat(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  h.beat(0);  // closes a ~40 ms gap
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  h.beat(0);  // fresh short gap must not shrink the watermark
  // The open gap (heartbeat age) is small again, but the watermark still
  // shows the closed 40 ms stall — exactly what a point sample misses.
  EXPECT_LT(h.heartbeat_age_ms(0), 30.0);
  EXPECT_GE(h.max_heartbeat_gap_ms(0), 30.0);
  // Rank 1 never stalled (and never beat): its watermark stays empty.
  EXPECT_EQ(h.max_heartbeat_gap_ms(1), 0.0);
}

TEST(WorldHealthStraggler, EwmaMirrorRoundTripsBits) {
  WorldHealth h(3);
  EXPECT_EQ(h.step_ewma_s(1), 0.0);
  const double v = 0.123456789012345;
  h.note_step_ewma(1, v);
  EXPECT_EQ(h.step_ewma_s(1), v);  // bit-exact through the atomic mirror
  EXPECT_EQ(h.step_ewma_s(0), 0.0);
}

TEST(WorldHealthStraggler, StragglerRecordIsFirstWriteWinsAndNoPoison) {
  WorldHealth h(4);
  EXPECT_EQ(h.straggler_rank(), -1);
  h.record_straggler(2);
  h.record_straggler(3);  // late verdict loses, mirroring record_failure
  EXPECT_EQ(h.straggler_rank(), 2);
  // An observation, never a poison: the world keeps running and no
  // failure record exists.
  EXPECT_FALSE(h.poisoned());
  EXPECT_EQ(h.fail_kind(), WorldFailKind::kNone);
  EXPECT_EQ(h.culprit_rank(), -1);
}

// ---------------------------------------------------------------------------
// Result payload codec: what crosses the supervisor boundary must be exact.

TEST(ResultPayloadCodec, RoundTripsEveryFieldBitExactly) {
  Trainer::ResultPayload p;
  p.resumed_step = 6;
  p.straggler_rank = 2;
  p.step_ewma = {0.25, 1.0 / 3.0, 7.125e-3, 0.5};
  p.report.train_losses = {1.5f, 0.33333334f, 2.7182818f};
  p.report.eval_losses = {0.125f};
  p.report.skipped_steps = 3;
  p.report.checkpoints_written = 2;

  const Trainer::ResultPayload q =
      Trainer::decode_result(Trainer::encode_result(p));
  EXPECT_EQ(q.resumed_step, 6);
  EXPECT_EQ(q.straggler_rank, 2);
  EXPECT_EQ(q.step_ewma, p.step_ewma);
  EXPECT_EQ(q.report.train_losses, p.report.train_losses);
  EXPECT_EQ(q.report.eval_losses, p.report.eval_losses);
  EXPECT_EQ(q.report.skipped_steps, 3);
  EXPECT_EQ(q.report.checkpoints_written, 2);
}

TEST(ResultPayloadCodec, EmptyPayloadDecodesToDefaults) {
  const Trainer::ResultPayload q =
      Trainer::decode_result(Trainer::encode_result({}));
  EXPECT_EQ(q.resumed_step, 0);
  EXPECT_EQ(q.straggler_rank, -1);
  EXPECT_TRUE(q.step_ewma.empty());
  EXPECT_TRUE(q.report.train_losses.empty());
}

TEST(ResultPayloadCodec, TruncatedBytesAreRejected) {
  const std::string bytes = Trainer::encode_result(
      {3, 1, {0.5, 0.5}, {{1.0f, 2.0f}, {}, 0, 0}});
  EXPECT_THROW((void)Trainer::decode_result(bytes.substr(0, bytes.size() - 2)),
               Error);
  EXPECT_THROW((void)Trainer::decode_result(std::string()), Error);
}

// ---------------------------------------------------------------------------
// Integration fixtures (mirrors test_elastic's TrainSetup).

/// Tiny-GPT, 10 steps, checkpoints at 3/6/9, ZeRO-3 + NVMe.
struct StragglerSetup {
  GptConfig mc;
  TokenDataset data{std::vector<std::int32_t>(400, 1), 16};

  StragglerSetup() {
    ByteTokenizer tok;
    std::string corpus;
    for (int i = 0; i < 30; ++i) corpus += "the quick brown fox jumps. ";
    mc.vocab = tok.vocab_size();
    mc.seq = 16;
    mc.hidden = 32;
    mc.layers = 2;
    mc.heads = 4;
    data = TokenDataset(tok.encode(corpus), mc.seq);
  }

  TrainerConfig trainer_config(const fs::path& dir) const {
    TrainerConfig tc;
    tc.total_steps = 10;
    tc.batch_per_rank = 2;
    tc.micro_batches = 1;
    tc.checkpoint_every = 3;  // checkpoints at steps 3, 6, 9
    tc.checkpoint_keep = 3;
    tc.checkpoint_path = (dir / "run.ckpt").string();
    tc.schedule.base_lr = 5e-3f;
    tc.schedule.warmup_steps = 2;
    tc.schedule.total_steps = 10;
    return tc;
  }

  EngineConfig engine_config(const fs::path& dir) const {
    EngineConfig cfg = preset_zero_infinity_nvme();
    cfg.nvme_dir = (dir / "swap").string();
    cfg.loss_scale.init_scale = 1024.0f;
    return cfg;
  }

  /// A clean legacy-options run (no deadlines, detection off) with optional
  /// weights — the static control a rebalanced world is compared against.
  std::pair<std::vector<float>, std::int64_t> run(const fs::path& dir,
                                                  int ranks, AioEngine& aio,
                                                  const RankWeights& weights) {
    TrainerConfig tc = trainer_config(dir);
    tc.rank_weights = weights;
    EngineConfig cfg = engine_config(dir);
    if (cfg.params_partitioned() && cfg.bandwidth_centric) {
      cfg.rank_weights = weights;
    }
    std::vector<float> losses;
    std::int64_t resumed = -1;
    run_ranks(ranks, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      Trainer trainer(engine, comm, data, nullptr, tc);
      const std::int64_t r = trainer.try_resume();
      const TrainerReport report = trainer.run();
      if (comm.rank() == 0) {
        losses = report.train_losses;
        resumed = r;
      }
    });
    return {losses, resumed};
  }
};

ElasticReport run_elastic_guarded(const ElasticConfig& ec,
                                  const EngineConfig& cfg, AioEngine& aio,
                                  const TokenDataset& data,
                                  const ModelFactory& factory,
                                  std::chrono::seconds limit) {
  std::promise<ElasticReport> done;
  std::future<ElasticReport> fut = done.get_future();
  std::thread([&done, &ec, &cfg, &aio, &data, &factory] {
    try {
      done.set_value(run_elastic(ec, cfg, aio, data, nullptr, factory));
    } catch (...) {
      done.set_exception(std::current_exception());
    }
  }).detach();
  if (fut.wait_for(limit) != std::future_status::ready) {
    ADD_FAILURE() << "elastic supervisor hung for " << limit.count()
                  << "s — straggler wind-down failed to complete";
    std::abort();
  }
  return fut.get();
}

class StragglerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().clear();
    dir_ = fs::temp_directory_path() /
           ("zi_straggler_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

// Weighted training is a pure performance knob: a weighted run checkpoints
// and resumes onto its own trajectory bit-exactly, through the same
// universal-checkpoint path the uniform runs use.
TEST_F(StragglerTest, WeightedRunResumesBitIdentically) {
  StragglerSetup setup;
  AioEngine aio;
  const RankWeights weights{1.25, 0.75};

  // Uninterrupted weighted run: 10 steps, checkpoints at 3/6/9.
  auto [full_losses, full_resumed] = setup.run(dir_, 2, aio, weights);
  ASSERT_EQ(full_losses.size(), 10u);
  ASSERT_EQ(full_resumed, 0);

  // A fresh world over the same directory resumes from step 9 and replays
  // step 10 bit-for-bit.
  auto [tail_losses, tail_resumed] = setup.run(dir_, 2, aio, weights);
  ASSERT_EQ(tail_resumed, 9);
  ASSERT_EQ(tail_losses.size(), 1u);
  EXPECT_EQ(tail_losses[0], full_losses[9]);
}

// The per-rank micro-batch sizes follow the weights (batch_per_rank is the
// mean) and the loss weighting keeps the collective schedule consistent.
TEST_F(StragglerTest, TrainerApportionsBatchesByWeight) {
  StragglerSetup setup;
  AioEngine aio;
  TrainerConfig tc = setup.trainer_config(dir_);
  tc.total_steps = 1;
  tc.checkpoint_every = 0;
  tc.checkpoint_path.clear();
  tc.rank_weights = {1.25, 0.75};  // global batch 4 -> {3, 1}
  EngineConfig cfg = setup.engine_config(dir_);
  cfg.rank_weights = tc.rank_weights;
  std::vector<std::int64_t> batches(2, -1);
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(setup.mc);
    ZeroEngine engine(model, comm, aio, cfg);
    Trainer trainer(engine, comm, setup.data, nullptr, tc);
    batches[static_cast<std::size_t>(comm.rank())] = trainer.rank_batch();
    (void)trainer.run();
  });
  EXPECT_EQ(batches, (std::vector<std::int64_t>{3, 1}));
}

// The headline: detect -> wind down -> rebalance -> resume bit-identically.
TEST_F(StragglerTest, InjectedStragglerIsRebalancedBitIdentically) {
  StragglerSetup setup;
  AioEngine aio;

  // World options shared by the probe and the elastic run: detection armed,
  // deadlines on (the supervisor's default behavior).
  const double kFactor = 3.0;
  const int kSteps = 2;
  ElasticConfig ec;
  ec.ranks = 4;
  ec.min_ranks = 2;
  ec.max_restarts = 2;
  ec.world.timeout_ms = 8000.0;
  ec.world.straggler_factor = kFactor;
  ec.world.straggler_steps = kSteps;
  ec.trainer = setup.trainer_config(dir_);
  const EngineConfig cfg = setup.engine_config(dir_);

  // --- Phase A: probe. A never-firing rank_stall rule counts collective
  // entries per rank, and a sky-high factor keeps the armed detector from
  // ever convicting while its EWMAs measure the world's typical busy time.
  // Entry counts and busy times transfer exactly: the probe body is the
  // elastic attempt body op-for-op (try_resume finds nothing in the fresh
  // probe directory, just like attempt 1 in the fresh run directory).
  FaultInjector::instance().configure(
      "seed=17;rank_stall:delay,rank=2,after=1000000000,delay_us=1");
  const fs::path probe_dir = dir_ / "probe";
  fs::create_directories(probe_dir);
  std::vector<double> probe_ewma;
  {
    WorldOptions probe_opts = ec.world;
    probe_opts.straggler_factor = 1e9;  // armed but unconvictable
    const TrainerConfig ptc = setup.trainer_config(probe_dir);
    const EngineConfig pcfg = setup.engine_config(probe_dir);
    const WorldReport wr =
        run_world(4, probe_opts, [&](Communicator& comm) {
          Gpt model(setup.mc);
          ZeroEngine engine(model, comm, aio, pcfg);
          Trainer trainer(engine, comm, setup.data, nullptr, ptc);
          trainer.try_resume();
          TrainerReport out = trainer.run();
          if (comm.rank() == 0) {
            comm.set_result(Trainer::encode_result(
                {trainer.resumed_step(), trainer.straggler_verdict(),
                 trainer.step_ewma(), std::move(out)}));
          }
        });
    ASSERT_TRUE(wr.ok) << (wr.errors.empty() ? "?" : wr.errors.front());
    const Trainer::ResultPayload payload =
        Trainer::decode_result(wr.rank_payloads.front());
    ASSERT_EQ(payload.straggler_rank, -1);
    ASSERT_EQ(payload.report.train_losses.size(), 10u);
    probe_ewma = payload.step_ewma;
    ASSERT_EQ(probe_ewma.size(), 4u);
  }
  const std::uint64_t total =
      FaultInjector::instance().stats(FaultSite::kRankStall).ops;
  ASSERT_GT(total, 0u);
  ASSERT_EQ(total % 4, 0u) << "ranks ran asymmetric collective sequences";
  // Per-rank collective entries per step (averaged over the 10-step run,
  // checkpoint collectives included).
  const std::int64_t per_step = static_cast<std::int64_t>(total / 4 / 10);
  ASSERT_GT(per_step, 0);

  // Typical busy time = lower median of the probe EWMAs; the injected
  // stall makes one fully-slowed step cost ~10x that, so the EWMA clears
  // kFactor x median with a wide margin after a single stalled step.
  std::vector<double> sorted_ewma = probe_ewma;
  std::nth_element(sorted_ewma.begin(), sorted_ewma.begin() + 1,
                   sorted_ewma.end());
  const double busy_median = std::max(sorted_ewma[1], 1e-5);
  const std::int64_t delay_us = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(10.0 * busy_median * 1e6 /
                                static_cast<double>(per_step)),
      500, 2000000);

  // --- Phase B: the real run. Rank 2 stalls delay_us at every collective
  // entry from step 4 on, with a budget of 1.5 steps' worth of fires: the
  // verdict (streak of kSteps = 2) lands on step 4 or 5 and consumes the
  // budget on the way, so the rebalanced attempt sees at most a sliver of
  // leftover fires — and those burn off inside its checkpoint-load
  // collectives, which run before step timing starts. One conviction, one
  // rebalance; a larger budget would convict the restarted world again.
  FaultInjector::instance().clear();
  FaultInjector::instance().configure(
      "seed=17;rank_stall:delay,rank=2,after=" + std::to_string(3 * per_step) +
      ",count=" + std::to_string(3 * per_step / 2) +
      ",delay_us=" + std::to_string(delay_us));
  const std::uint64_t restarts_before = elastic_restart_count();

  const ElasticReport rep = run_elastic_guarded(
      ec, cfg, aio, setup.data,
      [&setup] { return std::make_unique<Gpt>(setup.mc); },
      std::chrono::seconds(300));
  FaultInjector::instance().clear();

  ASSERT_TRUE(rep.succeeded) << (rep.attempts.empty()
                                     ? std::string("no attempts")
                                     : rep.attempts.back().error);
  EXPECT_EQ(rep.restarts, 1);
  EXPECT_EQ(rep.final_world, 4);  // rebalance keeps every rank
  EXPECT_EQ(elastic_restart_count(), restarts_before + 1);
  ASSERT_EQ(rep.attempts.size(), 2u);

  const ElasticAttempt& convicted = rep.attempts[0];
  EXPECT_FALSE(convicted.completed);
  EXPECT_EQ(convicted.world, 4);
  EXPECT_EQ(convicted.kind, WorldFailKind::kStraggler);
  EXPECT_EQ(convicted.culprit_rank, 2);
  EXPECT_EQ(convicted.ranks_lost, 0);  // the straggler is alive
  EXPECT_TRUE(convicted.rank_weights.empty());  // attempt 1 ran uniform
  EXPECT_NE(convicted.error.find("straggler verdict on rank 2"),
            std::string::npos)
      << convicted.error;

  const ElasticAttempt& rebalanced = rep.attempts[1];
  EXPECT_TRUE(rebalanced.completed);
  EXPECT_EQ(rebalanced.world, 4);
  const RankWeights& weights = rebalanced.rank_weights;
  ASSERT_EQ(weights.size(), 4u);
  // Weights ~ 1/observed-time, normalized to mean 1: the convicted rank
  // gets strictly the smallest share.
  double wsum = 0.0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(weights[static_cast<std::size_t>(r)], 0.0);
    wsum += weights[static_cast<std::size_t>(r)];
    if (r != 2) {
      EXPECT_LT(weights[2], weights[static_cast<std::size_t>(r)])
          << "rank " << r;
    }
  }
  EXPECT_NEAR(wsum, 4.0, 1e-9);

  const std::int64_t resumed = rebalanced.resumed_step;
  EXPECT_TRUE(resumed == 0 || resumed == 3 || resumed == 6)
      << "resumed from step " << resumed;
  ASSERT_EQ(rep.report.train_losses.size(),
            static_cast<std::size_t>(10 - resumed));

  // --- Phase C: control. Copy the exact checkpoint the rebalanced attempt
  // resumed from into a fresh directory and run a clean 4-rank world
  // launched *statically* with the same weights. Weighted layouts are exact
  // re-partitionings and reductions keep their rank order, so the two
  // trajectories must be bitwise equal.
  const fs::path ctrl_dir = dir_ / "control";
  fs::create_directories(ctrl_dir);
  if (resumed > 0) {
    const std::string src = Trainer::checkpoint_file(
        setup.trainer_config(dir_).checkpoint_path, resumed);
    ASSERT_TRUE(fs::exists(src));
    ASSERT_TRUE(fs::exists(ckpt_manifest_path(src)));
    const std::string dst = Trainer::checkpoint_file(
        setup.trainer_config(ctrl_dir).checkpoint_path, resumed);
    fs::copy_file(src, dst);
    fs::copy_file(ckpt_manifest_path(src), ckpt_manifest_path(dst));
  }

  auto [control_losses, control_resumed] =
      setup.run(ctrl_dir, 4, aio, weights);
  EXPECT_EQ(control_resumed, resumed);
  ASSERT_EQ(control_losses.size(), rep.report.train_losses.size());
  for (std::size_t i = 0; i < control_losses.size(); ++i) {
    EXPECT_EQ(control_losses[i], rep.report.train_losses[i])
        << "post-rebalance step " << resumed + static_cast<std::int64_t>(i) + 1
        << " diverged from the static same-weights control";
  }
}

}  // namespace
}  // namespace zi
