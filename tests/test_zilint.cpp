// zilint's own tests: scanner unit tests, one fixture tree per rule
// (violating + clean + suppressed files, committed under
// tests/zilint_fixtures/), and the whole-tree gate asserting the real
// source tree stays at zero findings.

#include "zilint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using zilint::Finding;
using zilint::Options;
using zilint::ScannedFile;

std::vector<Finding> run_fixture(const std::string& name) {
  Options options;
  options.root = std::string(ZILINT_FIXTURE_DIR) + "/" + name;
  return zilint::run_project(options);
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool has_finding(const std::vector<Finding>& findings, const std::string& file,
                 const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.file.find(file) != std::string::npos;
  });
}

// ---------------------------------------------------------------------------
// Scanner

TEST(ZilintScanner, StripsCommentsAndBlanksStrings) {
  const ScannedFile f = zilint::scan_source(
      "t.cpp",
      "int a; // std::mutex in a comment\n"
      "const char* s = \"std::mutex in a string\";\n"
      "/* std::mutex\n   in a block */ int b;\n");
  ASSERT_EQ(f.code.size(), 5u);  // trailing end_line adds one empty line
  EXPECT_EQ(f.code[0].find("std::mutex"), std::string::npos);
  EXPECT_EQ(f.code[1].find("std::mutex"), std::string::npos);
  EXPECT_EQ(f.code[2].find("std::mutex"), std::string::npos);
  EXPECT_NE(f.code[3].find("int b;"), std::string::npos);
  ASSERT_EQ(f.strings.size(), 1u);
  EXPECT_EQ(f.strings[0].line, 2);
  EXPECT_EQ(f.strings[0].text, "std::mutex in a string");
}

TEST(ZilintScanner, HandlesEscapesAndRawStrings) {
  const ScannedFile f = zilint::scan_source(
      "t.cpp",
      "const char* a = \"quote \\\" inside\";\n"
      "const char* b = R\"x(raw \"str\" with // no comment)x\";\n"
      "char c = '\\'';\n"
      "int after = 1;\n");
  ASSERT_EQ(f.strings.size(), 2u);
  EXPECT_EQ(f.strings[0].text, "quote \\\" inside");
  EXPECT_EQ(f.strings[1].text, "raw \"str\" with // no comment");
  EXPECT_NE(f.code[3].find("int after"), std::string::npos);
}

TEST(ZilintScanner, DigitSeparatorIsNotACharLiteral) {
  const ScannedFile f =
      zilint::scan_source("t.cpp", "int big = 1'000'000; int next = 2;\n");
  EXPECT_NE(f.code[0].find("int next = 2;"), std::string::npos);
  EXPECT_TRUE(f.strings.empty());
}

TEST(ZilintScanner, ParsesAllowsAndPropagatesStandaloneToNextLine) {
  const ScannedFile f = zilint::scan_source(
      "t.cpp",
      "int a;  // zilint:allow(raw-primitive): same-line\n"
      "// zilint:allow(doc-drift,handle-discipline): standalone\n"
      "int b;\n"
      "int c;\n");
  ASSERT_EQ(f.allows.count(1), 1u);
  EXPECT_EQ(f.allows.at(1).count("raw-primitive"), 1u);
  // Standalone comment covers its own line and the next.
  EXPECT_EQ(f.allows.at(2).count("doc-drift"), 1u);
  EXPECT_EQ(f.allows.at(3).count("doc-drift"), 1u);
  EXPECT_EQ(f.allows.at(3).count("handle-discipline"), 1u);
  EXPECT_EQ(f.allows.count(4), 0u);
  // The same-line allow (line 1 has code) does not leak to line 2.
  EXPECT_EQ(f.allows.at(2).count("raw-primitive"), 0u);
}

TEST(ZilintScanner, UnknownRuleInAllowIsAFinding) {
  const ScannedFile f = zilint::scan_source(
      "t.cpp", "int a;  // zilint:allow(raw-primitve): typo'd rule\n");
  ASSERT_EQ(f.bad_allows.size(), 1u);
  EXPECT_EQ(f.bad_allows[0].rule, "zilint-allow");
  EXPECT_NE(f.bad_allows[0].message.find("raw-primitve"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rules, via committed fixture trees

TEST(ZilintRules, RawPrimitive) {
  const auto findings = run_fixture("raw_primitive");
  EXPECT_EQ(count_rule(findings, "raw-primitive"), 2) << "bad.cpp seeds two";
  EXPECT_TRUE(has_finding(findings, "src/bad.cpp", "raw-primitive"));
  EXPECT_FALSE(has_finding(findings, "src/clean.cpp", "raw-primitive"));
  EXPECT_FALSE(has_finding(findings, "src/suppressed.cpp", "raw-primitive"));
  EXPECT_EQ(findings.size(), 2u) << "no other rule may fire in this tree";
}

TEST(ZilintRules, MutexAnnotation) {
  const auto findings = run_fixture("mutex_annotation");
  EXPECT_EQ(count_rule(findings, "mutex-annotation"), 1);
  EXPECT_TRUE(has_finding(findings, "src/bad.hpp", "mutex-annotation"));
  EXPECT_FALSE(has_finding(findings, "src/clean.hpp", "mutex-annotation"));
  EXPECT_FALSE(has_finding(findings, "src/suppressed.hpp", "mutex-annotation"));
  EXPECT_EQ(findings.size(), 1u);
}

TEST(ZilintRules, FaultSiteSync) {
  const auto findings = run_fixture("fault_site");
  EXPECT_EQ(count_rule(findings, "fault-site-sync"), 1);
  EXPECT_TRUE(has_finding(findings, "src/bad.cpp", "fault-site-sync"));
  EXPECT_FALSE(has_finding(findings, "src/use.cpp", "fault-site-sync"));
  EXPECT_FALSE(has_finding(findings, "src/suppressed.cpp", "fault-site-sync"));
  EXPECT_EQ(findings.size(), 1u);
  // The message names the unknown site and lists the registered ones.
  const auto& f = findings[0];
  EXPECT_NE(f.message.find("gamma"), std::string::npos);
  EXPECT_NE(f.message.find("alpha"), std::string::npos);
}

TEST(ZilintRules, HandleDiscipline) {
  const auto findings = run_fixture("handle_discipline");
  EXPECT_EQ(count_rule(findings, "handle-discipline"), 2)
      << "bad.cpp discards a TransferHandle and a StagingLease";
  EXPECT_TRUE(has_finding(findings, "src/bad.cpp", "handle-discipline"));
  EXPECT_FALSE(has_finding(findings, "src/clean.cpp", "handle-discipline"));
  EXPECT_FALSE(has_finding(findings, "src/suppressed.cpp", "handle-discipline"));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(ZilintRules, DocDrift) {
  const auto findings = run_fixture("doc_drift");
  EXPECT_EQ(count_rule(findings, "doc-drift"), 4);
  // Both directions, both artifacts.
  EXPECT_TRUE(has_finding(findings, "src/env.cpp", "doc-drift"));
  EXPECT_TRUE(has_finding(findings, "README.md", "doc-drift"));
  EXPECT_TRUE(has_finding(findings, "src/obs/metrics.cpp", "doc-drift"));
  EXPECT_TRUE(has_finding(findings, "DESIGN.md", "doc-drift"));
  // The suppressed read stays quiet.
  for (const auto& f : findings) {
    EXPECT_EQ(f.message.find("ZI_SUPPRESSED"), std::string::npos)
        << zilint::format_finding(f);
  }
  EXPECT_EQ(findings.size(), 4u);
}

// ---------------------------------------------------------------------------
// Output formats

TEST(ZilintOutput, FormatAndJson) {
  const Finding f{"src/x.cpp", 12, "doc-drift", "message \"with\" quotes"};
  EXPECT_EQ(zilint::format_finding(f),
            "src/x.cpp:12: doc-drift: message \"with\" quotes");
  const std::string json = zilint::findings_to_json({f});
  EXPECT_NE(json.find("\"file\":\"src/x.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":12"), std::string::npos);
  EXPECT_NE(json.find("\\\"with\\\""), std::string::npos);
  EXPECT_EQ(zilint::findings_to_json({}), "[\n]");
}

TEST(ZilintOutput, EveryRuleHasADescription) {
  for (const auto& name : zilint::rule_names()) {
    ASSERT_EQ(zilint::rule_descriptions().count(name), 1u) << name;
  }
}

// ---------------------------------------------------------------------------
// The gate: the real tree stays clean.

TEST(ZilintTree, RealSourceTreeIsClean) {
  Options options;
  options.root = ZILINT_SOURCE_ROOT;
  const auto findings = zilint::run_project(options);
  std::string rendered;
  for (const auto& f : findings) rendered += zilint::format_finding(f) + "\n";
  EXPECT_TRUE(findings.empty()) << rendered;
}

}  // namespace
