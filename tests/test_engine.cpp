// End-to-end engine integration tests.
//
// The central claim under test: ZeRO partitioning and heterogeneous
// offloading are *exact* system transformations — every Table 2
// configuration (DDP, ZeRO-1/2/3, ZeRO-Offload, ZeRO-Infinity with CPU and
// NVMe placement, activation-checkpoint offload, chunked NVMe optimizer)
// trains the same model along a bit-identical loss trajectory, while only
// the memory placement changes.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <map>

#include "core/engine.hpp"
#include "model/gpt.hpp"
#include "core/tiling.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig tiny_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.tie_embeddings = true;
  cfg.checkpoint_activations = true;
  return cfg;
}

// Deterministic per-(rank, step) synthetic batch: next-token prediction on
// a fixed periodic sequence with rank-dependent phase.
void make_batch(int rank, int step, const GptConfig& cfg, int batch,
                std::vector<std::int32_t>& tokens,
                std::vector<std::int32_t>& targets) {
  const std::int64_t n = batch * cfg.seq;
  tokens.resize(static_cast<std::size_t>(n));
  targets.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t v = (rank * 31 + step * 7 + i * 3) %
                           (cfg.vocab - 1);
    tokens[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(v);
    targets[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>((v * 3 + 3) % (cfg.vocab - 1));
  }
}

struct RunResult {
  std::vector<float> losses;  // global mean loss per step
  std::uint64_t prefetch_hits = 0;
  std::uint64_t chunks_pipelined = 0;
  std::uint64_t gpu_peak = 0;
};

RunResult run_training(EngineConfig cfg, const GptConfig& model_cfg,
                       int world, int steps, int batch_per_rank,
                       const fs::path& dir, bool fixed_data = false) {
  cfg.nvme_dir = dir.string();
  RunResult result;
  result.losses.resize(static_cast<std::size_t>(steps));
  AioEngine aio;
  run_ranks(world, [&](Communicator& comm) {
    Gpt model(model_cfg);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    for (int s = 0; s < steps; ++s) {
      make_batch(comm.rank(), fixed_data ? 0 : s, model_cfg, batch_per_rank,
                 tokens, targets);
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) {
        result.losses[static_cast<std::size_t>(s)] = st.global_loss;
      }
    }
    if (comm.rank() == 0) {
      if (engine.coordinator() != nullptr) {
        result.prefetch_hits = engine.coordinator()->stats().prefetch_hits;
      }
      result.chunks_pipelined = engine.optimizer().stats().chunks_pipelined;
      result.gpu_peak = engine.resources().gpu().stats().peak_used;
    }
  });
  return result;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_engine_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// ---------------------------------------------------------------------------
// THE equality matrix: all Table 2 configurations, identical trajectories.

TEST_F(EngineTest, AllStrategiesProduceIdenticalTrainingTrajectories) {
  const GptConfig model_cfg = tiny_model();
  constexpr int kWorld = 4;
  constexpr int kSteps = 5;
  constexpr int kBatch = 2;

  std::map<std::string, EngineConfig> configs;
  configs["data_parallel"] = preset_data_parallel();
  configs["zero1"] = preset_zero1();
  configs["zero2"] = preset_zero2();
  configs["zero_offload"] = preset_zero_offload();
  configs["zero3"] = preset_zero3();
  configs["zero_inf_cpu"] = preset_zero_infinity_cpu();
  configs["zero_inf_nvme"] = preset_zero_infinity_nvme();
  // Extra variants exercising more of the placement matrix.
  {
    EngineConfig c = preset_zero_infinity_nvme();
    c.activation_placement = Placement::kNvme;
    c.optimizer_chunk_elems = 64;  // force many pipeline chunks
    configs["zero_inf_nvme_chunked_act_nvme"] = c;
  }
  {
    EngineConfig c = preset_zero3();
    c.overlap_transfers = false;
    c.prefetch_depth = 0;
    configs["zero3_no_overlap"] = c;
  }

  std::map<std::string, RunResult> results;
  for (auto& [name, cfg] : configs) {
    results[name] =
        run_training(cfg, model_cfg, kWorld, kSteps, kBatch, dir_ / name);
  }

  const auto& reference = results.at("data_parallel").losses;
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(kSteps));
  for (const auto& [name, result] : results) {
    ASSERT_EQ(result.losses.size(), reference.size()) << name;
    for (std::size_t s = 0; s < reference.size(); ++s) {
      EXPECT_EQ(result.losses[s], reference[s])
          << name << " diverged from DDP at step " << s;
    }
  }


  // The chunked-NVMe run really went through the pipeline.
  EXPECT_GT(results.at("zero_inf_nvme_chunked_act_nvme").chunks_pipelined, 0u);
  // Prefetching really happened for partitioned NVMe runs after iteration 1.
  EXPECT_GT(results.at("zero_inf_nvme").prefetch_hits, 0u);
  EXPECT_EQ(results.at("zero3_no_overlap").prefetch_hits, 0u);
}

// ---------------------------------------------------------------------------

TEST_F(EngineTest, LossDecreasesOverLongerRun) {
  GptConfig model_cfg = tiny_model();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.adam.lr = 1e-2f;
  cfg.loss_scale.init_scale = 1024.0f;
  const RunResult r =
      run_training(cfg, model_cfg, 2, 25, 2, dir_, /*fixed_data=*/true);
  // Average of the last 5 losses well below the first.
  float tail = 0.0f;
  for (int i = 0; i < 5; ++i) tail += r.losses[static_cast<std::size_t>(24 - i)];
  tail /= 5.0f;
  EXPECT_LT(tail, r.losses[0] * 0.8f);
}

TEST_F(EngineTest, WorksAcrossWorldSizes) {
  const GptConfig model_cfg = tiny_model();
  for (const int world : {1, 2, 3}) {
    EngineConfig cfg = preset_zero_infinity_cpu();
    const RunResult r =
        run_training(cfg, model_cfg, world, 3, 2, dir_ / std::to_string(world));
    EXPECT_GT(r.losses[0], 0.0f) << "world " << world;
    EXPECT_LT(r.losses[2], r.losses[0] * 1.2f) << "world " << world;
  }
}

TEST_F(EngineTest, OverflowSkipsStepAndBacksOffScale) {
  const GptConfig model_cfg = tiny_model();
  EngineConfig cfg = preset_zero3();
  cfg.nvme_dir = (dir_ / "overflow").string();
  // A loss scale at the fp16 ceiling guarantees overflow on step 1.
  cfg.loss_scale.init_scale = 1.0e8f;
  cfg.loss_scale.max_scale = 1.0e9f;

  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(model_cfg);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    make_batch(comm.rank(), 0, model_cfg, 2, tokens, targets);

    bool saw_skip = false;
    float last_loss = 0.0f;
    for (int s = 0; s < 30; ++s) {
      const auto st = engine.train_step(tokens, targets);
      if (st.skipped) saw_skip = true;
      if (!st.skipped) last_loss = st.global_loss;
    }
    EXPECT_TRUE(saw_skip);
    EXPECT_GT(engine.loss_scaler().skipped_steps(), 0);
    EXPECT_GT(engine.loss_scaler().good_steps(), 0);
    EXPECT_LT(engine.loss_scaler().scale(), 1.0e8f);  // backed off
    EXPECT_GT(last_loss, 0.0f);                       // eventually trained
  });
}

TEST_F(EngineTest, GradClippingKeepsTrajectoryFinite) {
  const GptConfig model_cfg = tiny_model();
  EngineConfig cfg = preset_zero_infinity_cpu();
  cfg.max_grad_norm = 0.5f;
  const RunResult r = run_training(cfg, model_cfg, 2, 5, 2, dir_);
  for (const float l : r.losses) {
    EXPECT_TRUE(std::isfinite(l));
  }
  EXPECT_LT(r.losses.back(), r.losses.front() * 1.5f);
}

// The memory story of Fig. 6a in miniature: a model whose replicated DDP
// footprint exceeds "GPU memory" trains fine under ZeRO-Infinity on the
// same arenas, because model states moved to CPU/NVMe.
TEST_F(EngineTest, ZeroInfinityTrainsWhereDdpOoms) {
  GptConfig model_cfg = tiny_model();
  model_cfg.hidden = 64;
  model_cfg.layers = 4;
  model_cfg.heads = 4;

  // ~75K params → replicated DDP needs ~10 B/param GPU + optimizer state;
  // a 0.5 MiB arena cannot host it.
  EngineConfig ddp = preset_data_parallel();
  ddp.gpu_arena_bytes = 512 * kKiB;
  EXPECT_THROW(run_training(ddp, model_cfg, 2, 1, 1, dir_ / "ddp"),
               OutOfMemoryError);

  EngineConfig inf = preset_zero_infinity_nvme();
  inf.gpu_arena_bytes = 512 * kKiB;
  inf.nvme_capacity = 32 * kMiB;
  const RunResult r = run_training(inf, model_cfg, 2, 2, 1, dir_ / "inf");
  EXPECT_GT(r.losses[0], 0.0f);
  EXPECT_GT(r.gpu_peak, 0u);
  EXPECT_LE(r.gpu_peak, 512 * kKiB);
}

// Memory-centric tiling inside the full engine: tiled MLP linears train
// and reduce the gathered-parameter peak.
TEST_F(EngineTest, TiledLinearsTrainUnderZero3) {
  GptConfig plain_cfg = tiny_model();
  plain_cfg.hidden = 32;
  plain_cfg.layers = 1;
  GptConfig tiled_cfg = plain_cfg;
  tiled_cfg.linear_factory = TiledLinear::factory(4);

  EngineConfig cfg = preset_zero3();
  cfg.adam.lr = 1e-2f;
  cfg.loss_scale.init_scale = 1024.0f;
  const RunResult plain =
      run_training(cfg, plain_cfg, 2, 6, 1, dir_ / "plain", /*fixed_data=*/true);
  const RunResult tiled =
      run_training(cfg, tiled_cfg, 2, 6, 1, dir_ / "tiled", /*fixed_data=*/true);

  // Both learn. (The tiled model's parameters have different names and
  // therefore different deterministic init, so the trajectories are not
  // comparable point-wise; exact tile/linear numerical equivalence with
  // copied weights is covered in test_core.)
  EXPECT_LT(plain.losses.back(), plain.losses.front() * 0.95f);
  EXPECT_LT(tiled.losses.back(), tiled.losses.front() * 0.95f);
}

TEST_F(EngineTest, Stage3ReleasesAllGpuMemoryBetweenSteps) {
  const GptConfig model_cfg = tiny_model();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = dir_.string();
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(model_cfg);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets;
    make_batch(comm.rank(), 0, model_cfg, 2, tokens, targets);
    engine.train_step(tokens, targets);
    // All gathered params and grad buffers released; with NVMe placement
    // the arena holds nothing persistent.
    EXPECT_EQ(engine.resources().gpu().used(), 0u);
    EXPECT_GT(engine.resources().gpu().stats().peak_used, 0u);
  });
}

TEST_F(EngineTest, MemorySummaryReportsTiers) {
  const GptConfig model_cfg = tiny_model();
  EngineConfig cfg = preset_zero_infinity_nvme();
  cfg.nvme_dir = dir_.string();
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(model_cfg);
    ZeroEngine engine(model, comm, aio, cfg);
    const std::string summary = engine.memory_summary();
    EXPECT_NE(summary.find("GPU"), std::string::npos);
    EXPECT_NE(summary.find("NVMe"), std::string::npos);
    // NVMe actually holds the fp16 params + optimizer state.
    EXPECT_GT(engine.resources().accountant().used(Tier::kNvme), 0u);
  });
}

TEST_F(EngineTest, InvalidConfigsRejected) {
  const GptConfig model_cfg = tiny_model();
  AioEngine aio;
  // Stage 2 with NVMe optimizer is not a Table 2 configuration.
  EngineConfig bad = preset_zero2();
  bad.optimizer_placement = Placement::kNvme;
  bad.nvme_dir = dir_.string();
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(model_cfg);
    EXPECT_THROW(ZeroEngine(model, comm, aio, bad), Error);
  });
  // Stages 0-2 require replicated params on GPU.
  EngineConfig bad2 = preset_zero2();
  bad2.param_placement = Placement::kCpu;
  bad2.nvme_dir = dir_.string();
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(model_cfg);
    EXPECT_THROW(ZeroEngine(model, comm, aio, bad2), Error);
  });
}

}  // namespace
}  // namespace zi
