// Model-layer tests: module tree mechanics, hook firing, and numerical
// gradient checks of attention / blocks / the full GPT (including tied
// embeddings — the external-parameter path).
#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <cmath>

#include "common/rng.hpp"
#include "model/attention.hpp"
#include "model/block.hpp"
#include "model/checkpoint.hpp"
#include "model/gpt.hpp"
#include "model/local_store.hpp"

namespace zi {
namespace {

Tensor randn_tensor(std::vector<std::int64_t> shape, std::uint64_t stream) {
  Tensor t(std::move(shape), DType::kF32);
  Rng rng(99, stream);
  float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = rng.next_normal() * 0.5f;
  return t;
}

std::vector<float> loss_weights(std::size_t n) {
  Rng rng(777, 4242);
  std::vector<float> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = rng.next_normal();
  return w;
}

double weighted(const Tensor& t, const std::vector<float>& w) {
  double s = 0.0;
  const float* p = t.data<float>();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    s += static_cast<double>(p[i]) * w[static_cast<std::size_t>(i)];
  }
  return s;
}

// ---------------------------------------------------------------------------
// Tree mechanics

TEST(ModuleTree, ParameterIdsAreStablePreorder) {
  GptConfig cfg;
  cfg.layers = 2;
  Gpt a(cfg), b(cfg);
  const auto pa = a.all_parameters();
  const auto pb = b.all_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->name(), pb[i]->name());
    EXPECT_EQ(pa[i]->id(), static_cast<int>(i));
    EXPECT_EQ(pa[i]->shape(), pb[i]->shape());
  }
}

TEST(ModuleTree, TiedHeadRegistersExternalParameter) {
  GptConfig cfg;
  cfg.tie_embeddings = true;
  Gpt model(cfg);
  // Find the lm_head module and check its compute set includes wte.table.
  std::vector<Module*> mods;
  model.collect_modules(mods);
  Module* head = nullptr;
  for (Module* m : mods) {
    if (m->name() == "gpt.lm_head") head = m;
  }
  ASSERT_NE(head, nullptr);
  EXPECT_TRUE(head->own_parameters().empty());
  ASSERT_EQ(head->external_parameters().size(), 1u);
  EXPECT_EQ(head->external_parameters()[0]->name(), "gpt.wte.table");
  EXPECT_EQ(head->compute_parameters().size(), 1u);
}

TEST(ModuleTree, UntiedHeadOwnsItsWeight) {
  GptConfig cfg;
  cfg.tie_embeddings = false;
  Gpt model(cfg);
  std::vector<Module*> mods;
  model.collect_modules(mods);
  for (Module* m : mods) {
    if (m->name() == "gpt.lm_head") {
      EXPECT_EQ(m->own_parameters().size(), 1u);
      EXPECT_TRUE(m->external_parameters().empty());
    }
  }
}

TEST(ModuleTree, HooksFireInOrderAroundLeafCompute) {
  Linear lin("lin", 4, 3);
  LocalParamStore store(lin);
  std::vector<std::string> events;
  Module::Hooks hooks;
  hooks.pre_forward = [&](Module& m) { events.push_back("pre_f:" + m.name()); };
  hooks.post_forward = [&](Module& m) { events.push_back("post_f:" + m.name()); };
  hooks.pre_backward = [&](Module& m) { events.push_back("pre_b:" + m.name()); };
  hooks.post_backward = [&](Module& m) { events.push_back("post_b:" + m.name()); };
  lin.install_hooks(hooks);

  Tensor x = randn_tensor({2, 4}, 1);
  Tensor y = lin.run_forward(x);
  Tensor dy = randn_tensor({2, 3}, 2);
  lin.run_backward(dy);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], "pre_f:lin");
  EXPECT_EQ(events[1], "post_f:lin");
  EXPECT_EQ(events[2], "pre_b:lin");
  EXPECT_EQ(events[3], "post_b:lin");
}

TEST(ModuleTree, HooksReachAllDescendants) {
  GptConfig cfg;
  cfg.layers = 1;
  Gpt model(cfg);
  int fired = 0;
  Module::Hooks hooks;
  hooks.pre_forward = [&](Module&) { ++fired; };
  model.install_hooks(hooks);
  std::vector<Module*> mods;
  model.collect_modules(mods);
  for (Module* m : mods) m->fire_pre_forward();
  EXPECT_EQ(fired, static_cast<int>(mods.size()));
}

TEST(ModuleTree, ParameterAccessWithoutGatherThrows) {
  Linear lin("lin", 2, 2);
  // No LocalParamStore: parameters are kNotAvailable.
  Tensor x = randn_tensor({1, 2}, 3);
  EXPECT_THROW(lin.forward(x), Error);
}

TEST(ParameterInit, DeterministicAndNameDependent) {
  Parameter a("w.a", {8}, InitKind::kNormal, 0.02f);
  Parameter a2("w.a", {8}, InitKind::kNormal, 0.02f);
  Parameter b("w.b", {8}, InitKind::kNormal, 0.02f);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.init_value(i), a2.init_value(i));
    if (a.init_value(i) != b.init_value(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
  Parameter ones("g", {4}, InitKind::kOne, 1.0f);
  Parameter zeros("z", {4}, InitKind::kZero, 1.0f);
  EXPECT_EQ(ones.init_value(2), 1.0f);
  EXPECT_EQ(zeros.init_value(2), 0.0f);
}

// ---------------------------------------------------------------------------
// Gradient checks through whole modules

// Generic numeric-vs-analytic check for a module with a Tensor->Tensor
// forward; perturbs input entries and a sample of parameter entries.
void module_gradcheck(Module& mod, LocalParamStore& store, Tensor input,
                      double tol = 4e-2) {
  Tensor probe = mod.run_forward(input.clone());
  const auto lw = loss_weights(static_cast<std::size_t>(probe.numel()));

  auto loss = [&](const Tensor& in) {
    Tensor out = mod.run_forward(in.clone());
    return weighted(out, lw);
  };

  // Analytic gradients.
  store.zero_grads();
  Tensor dy({probe.shape()}, DType::kF32);
  for (std::int64_t i = 0; i < dy.numel(); ++i) {
    dy.set(i, lw[static_cast<std::size_t>(i)]);
  }
  (void)mod.run_forward(input.clone());
  Tensor din = mod.run_backward(dy);

  const float eps = 1e-3f;
  // Input gradient: check every entry.
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float save = input.get(i);
    input.set(i, save + eps);
    const double up = loss(input);
    input.set(i, save - eps);
    const double down = loss(input);
    input.set(i, save);
    const double numeric = (up - down) / (2.0 * eps);
    const double analytic = din.get(i);
    const double denom =
        std::max({std::fabs(numeric), std::fabs(analytic), 1.0});
    EXPECT_LE(std::fabs(numeric - analytic) / denom, tol)
        << "d_input[" << i << "] numeric=" << numeric
        << " analytic=" << analytic;
  }

  // Parameter gradients: sample entries from every parameter.
  for (Parameter* p : mod.all_parameters()) {
    const std::int64_t stride = std::max<std::int64_t>(1, p->numel() / 7);
    for (std::int64_t i = 0; i < p->numel(); i += stride) {
      float* data = p->full_tensor().data<float>();
      const float save = data[i];
      data[i] = save + eps;
      const double up = loss(input);
      data[i] = save - eps;
      const double down = loss(input);
      data[i] = save;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad_tensor().get(i);
      const double denom =
          std::max({std::fabs(numeric), std::fabs(analytic), 1.0});
      EXPECT_LE(std::fabs(numeric - analytic) / denom, tol)
          << p->name() << "[" << i << "] numeric=" << numeric
          << " analytic=" << analytic;
    }
  }
}

TEST(AttentionGrad, FullGradientCheck) {
  CausalSelfAttention attn("attn", /*hd=*/8, /*heads=*/2, /*seq=*/4);
  LocalParamStore store(attn);
  module_gradcheck(attn, store, randn_tensor({8, 8}, 10));  // batch=2
}

TEST(BlockGrad, FullGradientCheck) {
  TransformerBlock block("blk", /*hd=*/8, /*heads=*/2, /*seq=*/4);
  LocalParamStore store(block);
  module_gradcheck(block, store, randn_tensor({4, 8}, 11));  // batch=1
}

TEST(MlpGrad, FullGradientCheck) {
  Mlp mlp("mlp", /*hd=*/6);
  LocalParamStore store(mlp);
  module_gradcheck(mlp, store, randn_tensor({3, 6}, 12));
}

// The end-to-end check: perturb parameters of the full GPT (embeddings,
// attention, MLP, final LN, tied head) and compare the analytic gradient of
// the cross-entropy loss. Exercises weight tying end to end.
TEST(GptGrad, LossGradientMatchesNumeric) {
  GptConfig cfg;
  cfg.vocab = 11;
  cfg.seq = 4;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.heads = 2;
  cfg.checkpoint_activations = false;
  Gpt model(cfg);
  LocalParamStore store(model);

  std::vector<std::int32_t> tokens = {3, 1, 4, 1, 5, 9, 2, 6};   // batch=2
  std::vector<std::int32_t> targets = {1, 4, 1, 5, 9, 2, 6, 10};

  store.zero_grads();
  (void)model.forward_loss(tokens, targets);
  model.backward_loss(1.0f);

  const float eps = 3e-3f;
  for (Parameter* p : model.all_parameters()) {
    const std::int64_t stride = std::max<std::int64_t>(1, p->numel() / 5);
    for (std::int64_t i = 0; i < p->numel(); i += stride) {
      float* data = p->full_tensor().data<float>();
      const float save = data[i];
      data[i] = save + eps;
      const double up = model.forward_loss(tokens, targets);
      data[i] = save - eps;
      const double down = model.forward_loss(tokens, targets);
      data[i] = save;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = p->grad_tensor().get(i);
      const double denom =
          std::max({std::fabs(numeric), std::fabs(analytic), 0.05});
      EXPECT_LE(std::fabs(numeric - analytic) / denom, 8e-2)
          << p->name() << "[" << i << "] numeric=" << numeric
          << " analytic=" << analytic;
    }
  }
}

// ---------------------------------------------------------------------------
// Activation checkpointing

TEST(Checkpoint, RecomputeGivesIdenticalLossAndGrads) {
  GptConfig plain_cfg;
  plain_cfg.vocab = 13;
  plain_cfg.seq = 4;
  plain_cfg.hidden = 8;
  plain_cfg.layers = 2;
  plain_cfg.heads = 2;
  plain_cfg.checkpoint_activations = false;
  GptConfig ckpt_cfg = plain_cfg;
  ckpt_cfg.checkpoint_activations = true;

  Gpt plain(plain_cfg);
  Gpt ckpt(ckpt_cfg);
  LocalParamStore s1(plain), s2(ckpt);

  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::int32_t> targets = {2, 3, 4, 5, 6, 7, 8, 9};

  s1.zero_grads();
  s2.zero_grads();
  const float l1 = plain.forward_loss(tokens, targets);
  const float l2 = ckpt.forward_loss(tokens, targets);
  EXPECT_EQ(l1, l2);  // same deterministic init → bit-identical forward

  plain.backward_loss(1.0f);
  ckpt.backward_loss(1.0f);
  const auto p1 = plain.all_parameters();
  const auto p2 = ckpt.all_parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t k = 0; k < p1.size(); ++k) {
    for (std::int64_t i = 0; i < p1[k]->numel(); ++i) {
      ASSERT_EQ(p1[k]->grad_tensor().get(i), p2[k]->grad_tensor().get(i))
          << p1[k]->name() << "[" << i << "]";
    }
  }
}

TEST(Checkpoint, DropActivationsClearsLeafState) {
  TransformerBlock block("blk", 8, 2, 4);
  LocalParamStore store(block);
  Tensor x = randn_tensor({4, 8}, 20);
  (void)block.run_forward(x);
  block.drop_activations();
  Tensor dy = randn_tensor({4, 8}, 21);
  EXPECT_THROW(block.run_backward(dy), Error);
}

// ---------------------------------------------------------------------------
// GPT misc

TEST(Gpt, ParameterCountCloseToEq1) {
  GptConfig cfg;
  cfg.vocab = 64;
  cfg.seq = 16;
  cfg.hidden = 64;
  cfg.layers = 4;
  cfg.heads = 4;
  Gpt model(cfg);
  const double exact = static_cast<double>(model.num_parameters());
  const double approx = static_cast<double>(cfg.approx_params());
  // Eq. 1 ignores embeddings/layernorms/biases; at tiny hd the gap is
  // large, but the linear-layer bulk must dominate within ~2x.
  EXPECT_GT(exact, approx);
  EXPECT_LT(exact, approx * 2.5);
}

TEST(Gpt, RejectsTensorInterface) {
  GptConfig cfg;
  Gpt model(cfg);
  Tensor t({1}, DType::kF32);
  EXPECT_THROW(model.forward(t), Error);
  EXPECT_THROW(model.backward(t), Error);
}

TEST(Gpt, ForwardRejectsBadTokenCounts) {
  GptConfig cfg;
  cfg.seq = 8;
  Gpt model(cfg);
  LocalParamStore store(model);
  std::vector<std::int32_t> tokens(12, 1), targets(12, 1);  // not mult of 8
  EXPECT_THROW(model.forward_loss(tokens, targets), Error);
}

TEST(Gpt, EmbeddingRejectsOutOfVocabIds) {
  GptConfig cfg;
  cfg.vocab = 8;
  cfg.seq = 4;
  Gpt model(cfg);
  LocalParamStore store(model);
  std::vector<std::int32_t> tokens = {1, 2, 3, 99};
  std::vector<std::int32_t> targets = {1, 2, 3, 4};
  EXPECT_THROW(model.forward_loss(tokens, targets), Error);
}

}  // namespace
}  // namespace zi
