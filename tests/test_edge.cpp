// Edge cases across modules: truncated checkpoints, long-prompt
// generation, LocalParamStore semantics, accountant reporting, logging.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/log.hpp"
#include "core/engine.hpp"
#include "data/dataset.hpp"
#include "model/gpt.hpp"
#include "model/local_store.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

TEST(Edge, TruncatedCheckpointIsRejected) {
  const fs::path dir =
      fs::temp_directory_path() / ("zi_edge_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  GptConfig mc;
  mc.vocab = 32;
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 1;
  mc.heads = 2;
  const std::string ckpt = (dir / "c.bin").string();
  EngineConfig cfg = preset_zero3();
  cfg.nvme_dir = (dir / "swap").string();
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens(8, 1), targets(8, 2);
    engine.train_step(tokens, targets);
    engine.save_checkpoint(ckpt);
  });
  // Truncate the file mid-record.
  const auto full_size = fs::file_size(ckpt);
  fs::resize_file(ckpt, full_size / 2);
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    EXPECT_THROW(engine.load_checkpoint(ckpt), Error);
  });
  fs::remove_all(dir);
}

TEST(Edge, GenerationWithPromptLongerThanContext) {
  GptConfig mc;
  mc.vocab = 16;
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 1;
  mc.heads = 2;
  Gpt model(mc);
  LocalParamStore store(model);
  // Prompt of 12 tokens (> seq): the window must slide over it gracefully.
  std::vector<std::int32_t> prompt(12);
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<std::int32_t>(i % 4);
  }
  const auto out = model.generate_greedy(prompt, 16);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    EXPECT_EQ(out[i], prompt[i]);  // prompt preserved verbatim
  }
  for (const std::int32_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, mc.vocab);
  }
}

TEST(Edge, GenerationRejectsBadArguments) {
  GptConfig mc;
  mc.vocab = 16;
  mc.seq = 8;
  Gpt model(mc);
  LocalParamStore store(model);
  std::vector<std::int32_t> empty;
  EXPECT_THROW(model.generate_greedy(empty, 4), Error);
  std::vector<std::int32_t> prompt = {1, 2, 3};
  EXPECT_THROW(model.generate_greedy(prompt, 2), Error);  // length < prompt
}

TEST(Edge, LocalParamStoreRefreshRoundtrips) {
  Linear lin("lin", 4, 4);
  lin.finalize();
  LocalParamStore store(lin);
  Parameter* w = lin.weight();
  // Mutate fp16, refresh, fp32 compute copy follows.
  store.fp16(w).set(0, 2.5f);
  store.refresh_full_from_fp16();
  EXPECT_EQ(w->full_tensor().get(0), 2.5f);
  // Grad zeroing really zeroes.
  w->grad_tensor().set(3, 7.0f);
  store.zero_grads();
  EXPECT_EQ(w->grad_tensor().get(3), 0.0f);
  // Unknown parameter lookup fails loudly.
  Parameter stranger("other", {2}, InitKind::kZero, 1.0f);
  EXPECT_THROW(store.fp16(&stranger), Error);
}

TEST(Edge, AccountantSummaryMentionsAllTiers) {
  MemoryAccountant acc;
  acc.add(Tier::kGpu, 1024);
  acc.add(Tier::kNvme, 4096);
  acc.sub(Tier::kGpu, 1024);
  const std::string s = acc.summary();
  EXPECT_NE(s.find("GPU 0 B"), std::string::npos);
  EXPECT_NE(s.find("peak 1.00 KiB"), std::string::npos);
  EXPECT_NE(s.find("NVMe 4.00 KiB"), std::string::npos);
}

TEST(Edge, LogLevelsGateEmission) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kOff);
  ZI_LOG_ERROR << "suppressed";  // must not crash, must not emit
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(saved);
}

TEST(Edge, DatasetMinimumViableCorpus) {
  // seq + 1 tokens: exactly one window.
  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5};
  TokenDataset ds(tokens, /*seq=*/4);
  EXPECT_EQ(ds.num_windows(), 1);
  std::vector<std::int32_t> in, tg;
  ds.sample_batch(0, 0, 3, in, tg);  // every draw is the same window
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(tg[3], 5);
}

TEST(Edge, EngineRejectsEmptyMicroBatchList) {
  GptConfig mc;
  mc.vocab = 16;
  mc.seq = 8;
  mc.hidden = 16;
  mc.layers = 1;
  mc.heads = 2;
  EngineConfig cfg = preset_zero3();
  cfg.nvme_dir =
      (fs::temp_directory_path() / "zi_edge_empty").string();
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    Gpt model(mc);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<ZeroEngine::MicroBatch> none;
    EXPECT_THROW(engine.train_step(none), Error);
  });
  fs::remove_all(fs::temp_directory_path() / "zi_edge_empty");
}

}  // namespace
}  // namespace zi
