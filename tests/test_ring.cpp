// Point-to-point messaging + ring-algorithm collectives.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/ring.hpp"
#include "comm/world.hpp"

namespace zi {
namespace {

// ---------------------------------------------------------------------------
// p2p

TEST(P2p, SendRecvRoundtrip) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<float> msg = {1.0f, 2.0f, 3.0f};
      comm.send<float>(msg, /*to=*/1, /*tag=*/7);
    } else {
      std::vector<float> got(3);
      comm.recv<float>(got, /*from=*/0, /*tag=*/7);
      EXPECT_EQ(got, (std::vector<float>{1.0f, 2.0f, 3.0f}));
    }
  });
}

TEST(P2p, EagerSendDoesNotBlock) {
  // Everyone sends before anyone receives — deadlock-free by buffering.
  run_ranks(4, [](Communicator& comm) {
    const int n = comm.size();
    std::vector<float> msg = {static_cast<float>(comm.rank())};
    comm.send<float>(msg, (comm.rank() + 1) % n, 0);
    std::vector<float> got(1);
    comm.recv<float>(got, (comm.rank() + n - 1) % n, 0);
    EXPECT_EQ(got[0], static_cast<float>((comm.rank() + n - 1) % n));
  });
}

TEST(P2p, FifoOrderPerChannel) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<float> msg = {static_cast<float>(i)};
        comm.send<float>(msg, 1, i);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        std::vector<float> got(1);
        comm.recv<float>(got, 0, i);
        EXPECT_EQ(got[0], static_cast<float>(i));
      }
    }
  });
}

TEST(P2p, SizeMismatchThrows) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           if (comm.rank() == 0) {
                             std::vector<float> msg(3, 1.0f);
                             comm.send<float>(msg, 1, 0);
                           } else {
                             std::vector<float> got(5);
                             comm.recv<float>(got, 0, 0);
                           }
                         }),
               Error);
}

// ---------------------------------------------------------------------------
// Ring collectives vs direct collectives

TEST(Ring, AllgatherMatchesDirect) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> send(5);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = static_cast<float>(comm.rank() * 100 + static_cast<int>(i));
    }
    std::vector<float> ring(20), direct(20);
    ring_allgather<float>(comm, send, ring);
    comm.allgather<float>(send, direct);
    EXPECT_EQ(ring, direct);
  });
}

TEST(Ring, ReduceScatterMatchesDirectOnIntegers) {
  // Integer-valued floats: any summation order is exact, so ring == direct
  // bitwise.
  run_ranks(5, [](Communicator& comm) {
    std::vector<float> send(15);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = static_cast<float>((comm.rank() + 1) * (static_cast<int>(i) + 1));
    }
    std::vector<float> ring(3), direct(3);
    ring_reduce_scatter_sum<float>(comm, send, ring);
    comm.reduce_scatter_sum<float>(send, direct);
    EXPECT_EQ(ring, direct);
  });
}

TEST(Ring, ReduceScatterCloseToDirectOnRandomFloats) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<float> send(32);
    for (std::size_t i = 0; i < send.size(); ++i) {
      send[i] = 0.1f * static_cast<float>(comm.rank() + 1) +
                1e-3f * static_cast<float>(i);
    }
    std::vector<float> ring(8), direct(8);
    ring_reduce_scatter_sum<float>(comm, send, ring);
    comm.reduce_scatter_sum<float>(send, direct);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      EXPECT_NEAR(ring[i], direct[i], 1e-5f) << i;
    }
  });
}

TEST(Ring, ReduceScatterHalfUsesFp32Accumulation) {
  run_ranks(4, [](Communicator& comm) {
    // Same fp16 torture case as the direct collective's test.
    std::vector<half> send(4, half(comm.rank() == 0 ? 2048.0f : 1.0f));
    std::vector<half> recv(1);
    ring_reduce_scatter_sum<half>(comm, send, recv);
    EXPECT_EQ(recv[0].to_float(), 2052.0f);
  });
}

TEST(Ring, AllreduceMatchesDirectOnIntegers) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<float> ring(12), direct(12);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      ring[i] = direct[i] =
          static_cast<float>(comm.rank() * 7 + static_cast<int>(i));
    }
    ring_allreduce_sum<float>(comm, ring);
    comm.allreduce_sum<float>(direct);
    EXPECT_EQ(ring, direct);
  });
}

TEST(Ring, SingleRankDegenerate) {
  run_ranks(1, [](Communicator& comm) {
    std::vector<float> send = {1.0f, 2.0f};
    std::vector<float> recv(2);
    ring_allgather<float>(comm, send, recv);
    EXPECT_EQ(recv, send);
    ring_reduce_scatter_sum<float>(comm, send, recv);
    EXPECT_EQ(recv, send);
    std::vector<float> data = {3.0f};
    ring_allreduce_sum<float>(comm, data);
    EXPECT_EQ(data[0], 3.0f);
  });
}

// The bandwidth identity behind Sec. 6.1: a ring allreduce of S bytes
// moves 2(n-1)/n · S per rank. Verified through the traffic counters.
TEST(Ring, AllreduceTrafficIsTwoNMinusOneOverN) {
  constexpr int kRanks = 4;
  constexpr std::size_t kElems = 64;  // per-rank data size
  std::uint64_t p2p_bytes = 0;
  run_ranks(kRanks, [&](Communicator& comm) {
    std::vector<float> data(kElems, 1.0f);
    ring_allreduce_sum<float>(comm, data);
    comm.barrier();
    if (comm.rank() == 0) p2p_bytes = comm.traffic().p2p_bytes.load();
  });
  // Per rank: (n-1) chunks in reduce-scatter + (n-1) in allgather, chunk =
  // S/n. Total over all ranks: 2 n (n-1) chunk_bytes.
  const std::uint64_t chunk_bytes = kElems / kRanks * sizeof(float);
  EXPECT_EQ(p2p_bytes, 2ull * kRanks * (kRanks - 1) * chunk_bytes);
}

}  // namespace
}  // namespace zi
