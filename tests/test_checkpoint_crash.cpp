// Crash-consistency tests for the atomic checkpoint protocol.
//
// The invariants under test:
//   * a completed save leaves no intermediate files and a verifying
//     manifest (write-tmp -> fsync -> rename, manifest as commit point);
//   * any divergence between payload and manifest — flipped byte,
//     truncation, mangled manifest — is rejected at load with
//     CheckpointCorruptionError, never silently consumed;
//   * Trainer::try_resume falls back to the newest *intact* checkpoint;
//   * a run killed at step k and resumed from its checkpoint follows the
//     bit-identical trajectory of an uninterrupted run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/ckpt_io.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "data/tokenizer.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

class CheckpointCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_ckpt_crash_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// ---------------------------------------------------------------------------
// ckpt_io primitives.

TEST_F(CheckpointCrashTest, AtomicWriteRoundTripsAndLeavesNoTemporaries) {
  AioEngine aio;
  std::vector<std::byte> blob(10000);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>(i * 37);
  }
  const std::string path = (dir_ / "state.ckpt").string();
  write_checkpoint_file(aio, path, blob);

  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(ckpt_manifest_path(path)));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_FALSE(fs::exists(ckpt_manifest_path(path) + ".tmp"));

  EXPECT_TRUE(read_checkpoint_file(aio, path) == blob);
}

TEST_F(CheckpointCrashTest, RewriteReplacesAtomically) {
  AioEngine aio;
  const std::string path = (dir_ / "state.ckpt").string();
  std::vector<std::byte> v1(5000, std::byte{0x11});
  std::vector<std::byte> v2(3000, std::byte{0x22});  // shrinks the file
  write_checkpoint_file(aio, path, v1);
  write_checkpoint_file(aio, path, v2);
  EXPECT_TRUE(read_checkpoint_file(aio, path) == v2);
}

TEST_F(CheckpointCrashTest, FlippedPayloadByteIsRejected) {
  AioEngine aio;
  const std::string path = (dir_ / "state.ckpt").string();
  std::vector<std::byte> blob(10000, std::byte{0x33});
  write_checkpoint_file(aio, path, blob);
  flip_byte(path, 5123);
  EXPECT_THROW(read_checkpoint_file(aio, path), CheckpointCorruptionError);
}

TEST_F(CheckpointCrashTest, TruncatedPayloadIsRejected) {
  AioEngine aio;
  const std::string path = (dir_ / "state.ckpt").string();
  std::vector<std::byte> blob(10000, std::byte{0x44});
  write_checkpoint_file(aio, path, blob);
  fs::resize_file(path, 4096);  // simulated torn write / lost tail
  EXPECT_THROW(read_checkpoint_file(aio, path), CheckpointCorruptionError);
}

TEST_F(CheckpointCrashTest, MangledManifestIsRejected) {
  AioEngine aio;
  const std::string path = (dir_ / "state.ckpt").string();
  write_checkpoint_file(aio, path, std::vector<std::byte>(64, std::byte{1}));
  std::ofstream(ckpt_manifest_path(path)) << "not a manifest at all";
  EXPECT_THROW(read_checkpoint_file(aio, path), CheckpointCorruptionError);
}

TEST_F(CheckpointCrashTest, MissingManifestLoadsUnverifiedForBackCompat) {
  AioEngine aio;
  const std::string path = (dir_ / "legacy.ckpt").string();
  std::vector<std::byte> blob(256, std::byte{0x55});
  write_checkpoint_file(aio, path, blob);
  fs::remove(ckpt_manifest_path(path));
  // Legacy (pre-manifest) checkpoints still load; verification is skipped.
  EXPECT_TRUE(read_checkpoint_file(aio, path) == blob);
}

// ---------------------------------------------------------------------------
// Training-level recovery. One shared fixture trains the reference run.

struct TrainSetup {
  GptConfig mc;
  TokenDataset data{std::vector<std::int32_t>(400, 1), 16};

  TrainSetup() {
    ByteTokenizer tok;
    std::string corpus;
    for (int i = 0; i < 30; ++i) corpus += "the quick brown fox jumps. ";
    mc.vocab = tok.vocab_size();
    mc.seq = 16;
    mc.hidden = 32;
    mc.layers = 2;
    mc.heads = 4;
    data = TokenDataset(tok.encode(corpus), mc.seq);
  }

  TrainerConfig trainer_config(const fs::path& dir) const {
    TrainerConfig tc;
    tc.total_steps = 10;
    tc.batch_per_rank = 2;
    tc.micro_batches = 1;
    tc.checkpoint_every = 3;  // checkpoints at steps 3, 6, 9
    tc.checkpoint_keep = 3;
    tc.checkpoint_path = (dir / "run.ckpt").string();
    tc.schedule.base_lr = 5e-3f;
    tc.schedule.warmup_steps = 2;
    tc.schedule.total_steps = 10;
    return tc;
  }

  EngineConfig engine_config(const fs::path& dir) const {
    EngineConfig cfg = preset_zero_infinity_cpu();
    cfg.nvme_dir = (dir / "swap").string();
    cfg.loss_scale.init_scale = 1024.0f;
    return cfg;
  }

  /// Train up to `stop_after` steps (simulating a kill if < total), resuming
  /// first when `resume` is set. Returns rank-0 losses for the executed
  /// steps and the step try_resume() reported.
  std::pair<std::vector<float>, std::int64_t> run(const fs::path& dir,
                                                  std::int64_t stop_after,
                                                  bool resume) {
    TrainerConfig tc = trainer_config(dir);
    tc.total_steps = stop_after;
    const EngineConfig cfg = engine_config(dir);
    std::vector<float> losses;
    std::int64_t resumed = -1;
    AioEngine aio;
    run_ranks(2, [&](Communicator& comm) {
      Gpt model(mc);
      ZeroEngine engine(model, comm, aio, cfg);
      Trainer trainer(engine, comm, data, nullptr, tc);
      const std::int64_t r = resume ? trainer.try_resume() : 0;
      const TrainerReport report = trainer.run();
      if (comm.rank() == 0) {
        losses = report.train_losses;
        resumed = r;
      }
    });
    return {losses, resumed};
  }
};

TEST_F(CheckpointCrashTest, ResumeFallsBackPastACorruptCheckpoint) {
  TrainSetup setup;
  auto [losses, resumed] = setup.run(dir_, 10, false);
  ASSERT_EQ(losses.size(), 10u);
  const std::string base = setup.trainer_config(dir_).checkpoint_path;
  ASSERT_TRUE(fs::exists(Trainer::checkpoint_file(base, 9)));

  // The newest checkpoint (step 9) is corrupted on disk; resume must detect
  // it via the checksum and fall back to step 6.
  flip_byte(Trainer::checkpoint_file(base, 9), 1000);
  auto [more, resumed2] = setup.run(dir_, 10, true);
  EXPECT_EQ(resumed2, 6);
  // Steps 7..10 re-executed from the fallback follow the original
  // trajectory exactly.
  ASSERT_EQ(more.size(), 4u);
  for (std::size_t i = 0; i < more.size(); ++i) {
    EXPECT_EQ(more[i], losses[6 + i]) << "step " << 7 + i;
  }
}

TEST_F(CheckpointCrashTest, ResumeSkipsUncommittedCheckpointWithoutManifest) {
  TrainSetup setup;
  setup.run(dir_, 10, false);
  const std::string base = setup.trainer_config(dir_).checkpoint_path;
  // Simulate a crash between the payload rename and the manifest commit:
  // the step-9 payload exists but has no manifest.
  fs::remove(ckpt_manifest_path(Trainer::checkpoint_file(base, 9)));
  auto [more, resumed] = setup.run(dir_, 10, true);
  EXPECT_EQ(resumed, 6);
}

TEST_F(CheckpointCrashTest, KillAndResumeMatchesUninterruptedRun) {
  TrainSetup setup;
  // Reference: one uninterrupted 10-step run.
  const fs::path ref_dir = dir_ / "ref";
  fs::create_directories(ref_dir);
  auto [ref_losses, r0] = setup.run(ref_dir, 10, false);
  (void)r0;
  ASSERT_EQ(ref_losses.size(), 10u);

  // Victim: killed after step 6 (checkpoint at 6 is on disk), then a fresh
  // process resumes and finishes.
  const fs::path kill_dir = dir_ / "kill";
  fs::create_directories(kill_dir);
  auto [first_half, r1] = setup.run(kill_dir, 6, false);
  (void)r1;
  ASSERT_EQ(first_half.size(), 6u);
  auto [second_half, resumed] = setup.run(kill_dir, 10, true);
  EXPECT_EQ(resumed, 6);
  ASSERT_EQ(second_half.size(), 4u);

  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_EQ(first_half[s], ref_losses[s]) << "pre-kill step " << s + 1;
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(second_half[s], ref_losses[6 + s]) << "post-resume step "
                                                 << 7 + s;
  }
}

TEST_F(CheckpointCrashTest, ResumeSkipsStepSuffixTooLongForInt64) {
  TrainSetup setup;
  auto [losses, r0] = setup.run(dir_, 10, false);
  (void)r0;
  ASSERT_EQ(losses.size(), 10u);
  const std::string base = setup.trainer_config(dir_).checkpoint_path;

  // A stray file whose all-digit step suffix overflows int64 (29 nines).
  // std::stoll would throw std::out_of_range out of try_resume(); the
  // defensive parse must simply skip it and resume from step 9.
  std::ofstream(base + ".step99999999999999999999999999999") << "junk";
  auto [more, resumed] = setup.run(dir_, 10, true);
  EXPECT_EQ(resumed, 9);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0], losses[9]);
}

TEST_F(CheckpointCrashTest, OldCheckpointsArePruned) {
  TrainSetup setup;
  TrainerConfig tc = setup.trainer_config(dir_);
  tc.checkpoint_keep = 1;
  const EngineConfig cfg = setup.engine_config(dir_);
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(setup.mc);
    ZeroEngine engine(model, comm, aio, cfg);
    Trainer trainer(engine, comm, setup.data, nullptr, tc);
    trainer.run();
  });
  const std::string base = tc.checkpoint_path;
  EXPECT_TRUE(fs::exists(Trainer::checkpoint_file(base, 9)));
  EXPECT_TRUE(fs::exists(ckpt_manifest_path(Trainer::checkpoint_file(base, 9))));
  EXPECT_FALSE(fs::exists(Trainer::checkpoint_file(base, 6)));
  EXPECT_FALSE(fs::exists(Trainer::checkpoint_file(base, 3)));
  EXPECT_FALSE(fs::exists(ckpt_manifest_path(Trainer::checkpoint_file(base, 3))));
}

}  // namespace
}  // namespace zi
