// Rank-failure semantics of the abortable communicator.
//
// Invariants under test (DESIGN.md §6):
//   * a rank that dies via exception poisons the world — every peer blocked
//     in a barrier, collective, recv(), or capped send() unblocks with
//     CommAbortedError instead of hanging forever;
//   * a timed wait that expires blames a missing peer (oldest heartbeat),
//     poisons the world, and throws CommTimeoutError;
//   * run_ranks rethrows the original exception when exactly one rank had a
//     real failure, and aggregates into WorldError otherwise;
//   * the P2P channel cap blocks eager senders (abort-aware);
//   * the watchdog detects a seeded rank_stall by heartbeat age, without
//     any rank crashing;
//   * ZI_FAULTS rejects typo'd site names with a suggestion.
//
// Every world that *should* abort runs under a test-level watchdog: if the
// subsystem regresses into a hang, the test fails fast instead of eating
// the ctest timeout.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "comm/world.hpp"
#include "testing/fault_injector.hpp"

namespace zi {
namespace {

using std::chrono::steady_clock;

/// Run a world on a helper thread and fail hard if it does not return
/// within `timeout_s` — "a rank exception never hangs the process" is the
/// acceptance criterion this guards.
WorldReport run_world_guarded(int num_ranks, const WorldOptions& options,
                              std::function<void(Communicator&)> fn,
                              int timeout_s = 60) {
  auto prom = std::make_shared<std::promise<WorldReport>>();
  std::future<WorldReport> fut = prom->get_future();
  std::thread([prom, num_ranks, options, fn = std::move(fn)] {
    try {
      prom->set_value(run_world(num_ranks, options, fn));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  }).detach();
  if (fut.wait_for(std::chrono::seconds(timeout_s)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "run_world did not return within " << timeout_s
                  << " s — the abort path hung";
    std::abort();  // cannot cancel the wedged world; die loudly
  }
  return fut.get();
}

WorldOptions timed_options(double timeout_ms) {
  WorldOptions o;
  o.timeout_ms = timeout_ms;
  return o;
}

class CommFailureTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().clear(); }
};

// ---------------------------------------------------------------------------
// Poison wakeups.

TEST_F(CommFailureTest, RankExceptionUnblocksBarrierPeers) {
  const std::uint64_t aborts_before = comm_abort_count();
  const WorldReport rep =
      run_world_guarded(4, timed_options(30000.0), [](Communicator& comm) {
        if (comm.rank() == 2) throw Error("rank 2 dies before the barrier");
        comm.barrier();  // would hang forever without the poison
      });
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.kind, WorldFailKind::kException);
  EXPECT_EQ(rep.culprit_rank, 2);
  ASSERT_EQ(rep.primary_ranks.size(), 1u);
  EXPECT_EQ(rep.primary_ranks[0], 2);
  // All three peers aborted out of the barrier (no zombies, no detach).
  EXPECT_EQ(rep.failed_ranks.size(), 4u);
  EXPECT_EQ(rep.detached, 0);
  EXPECT_GT(comm_abort_count(), aborts_before);
}

TEST_F(CommFailureTest, PoisonWakesCollectiveNotJustBarrier) {
  std::vector<float> buf(64, 1.0f);
  const WorldReport rep =
      run_world_guarded(3, timed_options(30000.0), [&](Communicator& comm) {
        if (comm.rank() == 0) throw OutOfMemoryError("rank 0 OOMs");
        std::vector<float> local(64, static_cast<float>(comm.rank()));
        comm.allreduce_sum(std::span<float>(local));
      });
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.culprit_rank, 0);
  EXPECT_EQ(rep.primary_ranks.size(), 1u);
}

TEST_F(CommFailureTest, RecvWakesOnPoisonInsteadOfTimeout) {
  const auto t0 = steady_clock::now();
  const WorldReport rep =
      run_world_guarded(2, timed_options(30000.0), [](Communicator& comm) {
        if (comm.rank() == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          throw Error("sender dies without sending");
        }
        std::vector<int> buf(4);
        comm.recv(std::span<int>(buf), /*from=*/1);
      });
  const double elapsed_s =
      std::chrono::duration<double>(steady_clock::now() - t0).count();
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.culprit_rank, 1);
  // The receiver woke via the poison, not the 30 s timeout.
  EXPECT_LT(elapsed_s, 10.0);
  bool receiver_aborted = false;
  for (std::size_t i = 0; i < rep.failed_ranks.size(); ++i) {
    if (rep.failed_ranks[i] != 0) continue;
    try {
      std::rethrow_exception(rep.exceptions[i]);
    } catch (const CommAbortedError& e) {
      receiver_aborted = true;
      EXPECT_EQ(e.op(), "recv");
      EXPECT_EQ(e.failing_rank(), 1);
    } catch (...) {
    }
  }
  EXPECT_TRUE(receiver_aborted);
}

// ---------------------------------------------------------------------------
// Timeouts.

TEST_F(CommFailureTest, BarrierTimeoutBlamesTheMissingRank) {
  const WorldReport rep =
      run_world_guarded(2, timed_options(300.0), [](Communicator& comm) {
        if (comm.rank() == 1) {
          // Never joins the barrier; stops heartbeating too.
          std::this_thread::sleep_for(std::chrono::milliseconds(1500));
          return;
        }
        comm.barrier();
      });
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.kind, WorldFailKind::kTimeout);
  EXPECT_EQ(rep.culprit_rank, 1);
  ASSERT_EQ(rep.failed_ranks.size(), 1u);  // rank 1 returned "cleanly"
  EXPECT_EQ(rep.failed_ranks[0], 0);
  bool timed_out = false;
  try {
    std::rethrow_exception(rep.exceptions[0]);
  } catch (const CommTimeoutError& e) {
    timed_out = true;
    EXPECT_EQ(e.op(), "barrier");
    EXPECT_EQ(e.failing_rank(), 1);
    EXPECT_DOUBLE_EQ(e.timeout_ms(), 300.0);
  } catch (...) {
  }
  EXPECT_TRUE(timed_out);
}

TEST_F(CommFailureTest, RecvTimeoutBlamesTheSilentSender) {
  const WorldReport rep =
      run_world_guarded(2, timed_options(300.0), [](Communicator& comm) {
        if (comm.rank() == 1) return;  // exits without ever sending
        std::vector<int> buf(4);
        comm.recv(std::span<int>(buf), /*from=*/1);
      });
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.kind, WorldFailKind::kTimeout);
  EXPECT_EQ(rep.culprit_rank, 1);
}

// ---------------------------------------------------------------------------
// run_ranks exception policy.

TEST_F(CommFailureTest, RunRanksRethrowsTheSingleOriginalException) {
  EXPECT_THROW(
      run_ranks(3, timed_options(30000.0),
                [](Communicator& comm) {
                  if (comm.rank() == 1) throw OutOfMemoryError("only rank 1");
                  comm.barrier();
                }),
      OutOfMemoryError);
}

TEST_F(CommFailureTest, RunRanksAggregatesMultipleRealFailures) {
  try {
    run_ranks(3, timed_options(30000.0), [](Communicator& comm) {
      if (comm.rank() == 0) throw Error("rank 0 fails");
      if (comm.rank() == 2) throw OutOfMemoryError("rank 2 fails");
      comm.barrier();
    });
    FAIL() << "expected WorldError";
  } catch (const WorldError& e) {
    EXPECT_EQ(e.failed_ranks().size(), 3u);  // 0, 2, and the aborted rank 1
    EXPECT_GE(e.first_failing_rank(), 0);
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos);
  }
}

TEST_F(CommFailureTest, RunRanksAggregatesPureTimeoutAborts) {
  // Nobody throws a "real" exception: rank 1 just never arrives. The
  // timeout victims are all comm errors, so run_ranks reports a WorldError
  // blaming rank 1.
  try {
    run_ranks(2, timed_options(300.0), [](Communicator& comm) {
      if (comm.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
        return;
      }
      comm.barrier();
    });
    FAIL() << "expected WorldError";
  } catch (const WorldError& e) {
    EXPECT_EQ(e.first_failing_rank(), 1);
  }
}

// ---------------------------------------------------------------------------
// P2P channel caps.

TEST_F(CommFailureTest, CappedSendBlocksUntilReceiverDrains) {
  WorldOptions opts = timed_options(30000.0);
  opts.p2p_capacity_messages = 2;
  std::atomic<std::uint64_t> blocks{0};
  const WorldReport rep =
      run_world_guarded(2, opts, [&](Communicator& comm) {
        constexpr int kMessages = 8;
        if (comm.rank() == 0) {
          std::vector<int> payload(16);
          for (int m = 0; m < kMessages; ++m) {
            payload.assign(payload.size(), m);
            comm.send(std::span<const int>(payload), /*to=*/1, /*tag=*/m);
          }
          blocks = comm.traffic().p2p_send_blocks.load();
        } else {
          // Let the sender pile into the cap before draining.
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          std::vector<int> got(16);
          for (int m = 0; m < kMessages; ++m) {
            comm.recv(std::span<int>(got), /*from=*/0, /*tag=*/m);
            EXPECT_EQ(got[0], m);  // FIFO preserved through the blocking
          }
        }
      });
  EXPECT_TRUE(rep.ok);
  EXPECT_GE(blocks.load(), 1u);  // the cap actually engaged
}

TEST_F(CommFailureTest, ByteCapStillDeliversOversizedMessage) {
  WorldOptions opts = timed_options(30000.0);
  opts.p2p_capacity_bytes = 8;  // smaller than one payload
  const WorldReport rep = run_world_guarded(2, opts, [](Communicator& comm) {
    std::vector<int> buf(64, 7);
    if (comm.rank() == 0) {
      comm.send(std::span<const int>(buf), 1);
    } else {
      comm.recv(std::span<int>(buf), 0);
      EXPECT_EQ(buf[63], 7);
    }
  });
  EXPECT_TRUE(rep.ok);
}

TEST_F(CommFailureTest, PoisonUnblocksSenderStuckOnCap) {
  WorldOptions opts = timed_options(30000.0);
  opts.p2p_capacity_messages = 1;
  const WorldReport rep = run_world_guarded(2, opts, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload(4, 1);
      // First send fits; the second blocks on the cap (receiver never
      // drains) until rank 1's death poisons the world.
      comm.send(std::span<const int>(payload), 1);
      comm.send(std::span<const int>(payload), 1);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      throw Error("receiver dies without draining");
    }
  });
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.culprit_rank, 1);
  bool sender_aborted = false;
  for (std::size_t i = 0; i < rep.failed_ranks.size(); ++i) {
    if (rep.failed_ranks[i] != 0 || !rep.exceptions[i]) continue;
    try {
      std::rethrow_exception(rep.exceptions[i]);
    } catch (const CommAbortedError& e) {
      sender_aborted = true;
      EXPECT_EQ(e.op(), "send");
    } catch (...) {
    }
  }
  EXPECT_TRUE(sender_aborted);
}

// ---------------------------------------------------------------------------
// Fault injection: rank_crash / rank_stall / collective_delay.

TEST_F(CommFailureTest, RankCrashFiresAtExactPerRankOrdinal) {
  FaultInjector& inj = FaultInjector::instance();
  inj.configure("seed=7;rank_crash:error,rank=1,after=3,count=1");
  try {
    run_ranks(2, timed_options(30000.0), [](Communicator& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
    FAIL() << "expected the injected crash to surface";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank_crash"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
  }
  // Rank 1 entered exactly 4 collectives (ordinals 0..3; the 4th fired);
  // rank 0 completed barriers until the poison stopped it.
  EXPECT_EQ(inj.stats(FaultSite::kRankCrash).errors, 1u);
}

TEST_F(CommFailureTest, SeededRankStallIsDetectedByHeartbeatAge) {
  FaultInjector::instance().configure(
      "seed=7;rank_stall:error,rank=1,after=2,count=1");
  WorldOptions opts;  // no timeout: detection must come from the watchdog
  opts.watchdog_interval_ms = 50.0;
  opts.stall_threshold_ms = 400.0;
  const WorldReport rep =
      run_world_guarded(2, opts, [](Communicator& comm) {
        for (int i = 0; i < 10; ++i) comm.barrier();
      });
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.kind, WorldFailKind::kStall);
  EXPECT_EQ(rep.culprit_rank, 1);
  EXPECT_EQ(rep.detached, 0);  // the stall loop wakes on poison and aborts
  EXPECT_NE(rep.culprit_what.find("heartbeat"), std::string::npos);
}

TEST_F(CommFailureTest, BoundedStallIsJustSlowNotDead) {
  // delay-kind stall: the rank freezes 80 ms then resumes — a slow rank,
  // not a dead one. With a generous timeout the world completes.
  FaultInjector::instance().configure(
      "seed=7;rank_stall:delay,rank=1,after=1,count=2,delay_us=80000");
  const WorldReport rep =
      run_world_guarded(2, timed_options(30000.0), [](Communicator& comm) {
        for (int i = 0; i < 5; ++i) comm.barrier();
      });
  EXPECT_TRUE(rep.ok);
}

TEST_F(CommFailureTest, CollectiveDelayInjectsLatencyWithoutFailure) {
  FaultInjector::instance().configure(
      "seed=7;collective_delay:delay,p=1,delay_us=2000");
  const auto t0 = steady_clock::now();
  const WorldReport rep =
      run_world_guarded(2, WorldOptions{}, [](Communicator& comm) {
        for (int i = 0; i < 5; ++i) comm.barrier();
      });
  EXPECT_TRUE(rep.ok);
  // 2 ranks × 5 collectives × 2 ms ≥ 10 ms of injected latency per rank.
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_ms, 10.0);
  EXPECT_GE(FaultInjector::instance().stats(FaultSite::kCollectiveDelay).delays,
            10u);
}

// ---------------------------------------------------------------------------
// ZI_FAULTS validation.

TEST_F(CommFailureTest, TypoedSiteNameSuggestsTheRealOne) {
  try {
    // zilint:allow(fault-site-sync): the typo is the point of this test
    FaultInjector::instance().configure("aio_raed:error,p=0.1");
    FAIL() << "expected the typo to be rejected";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("aio_raed"), std::string::npos);
    EXPECT_NE(what.find("did you mean 'aio_read'"), std::string::npos);
    EXPECT_NE(what.find("rank_crash"), std::string::npos);  // lists sites
  }
}

TEST_F(CommFailureTest, NewSiteNamesRoundTrip) {
  EXPECT_EQ(fault_site_from_name("rank_crash"), FaultSite::kRankCrash);
  EXPECT_EQ(fault_site_from_name("rank_stall"), FaultSite::kRankStall);
  EXPECT_EQ(fault_site_from_name("collective_delay"),
            FaultSite::kCollectiveDelay);
  EXPECT_STREQ(fault_site_name(FaultSite::kRankStall), "rank_stall");
}

// ---------------------------------------------------------------------------
// Explicit abort + subgroup poisoning.

TEST_F(CommFailureTest, AbortWorldReachesSplitSubgroups) {
  const WorldReport rep =
      run_world_guarded(4, timed_options(30000.0), [](Communicator& comm) {
        Communicator sub = comm.split(comm.rank() % 2);
        if (comm.rank() == 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          comm.abort_world("operator requested stop");
          return;
        }
        // Peers block on a *subgroup* barrier; the poison must traverse
        // the split tree to reach them.
        sub.barrier();
        sub.barrier();
        sub.barrier();
      });
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.culprit_rank, 3);
  EXPECT_NE(rep.culprit_what.find("operator requested stop"),
            std::string::npos);
}

}  // namespace
}  // namespace zi
