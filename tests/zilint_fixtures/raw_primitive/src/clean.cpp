// Fixture: the zi:: shims never trip raw-primitive, and mentions of
// std::mutex inside comments or string literals are invisible to the rule.
#include "common/thread_annotations.hpp"

namespace fixture {

const char* kDoc = "prefer zi::Mutex over std::mutex";  // string, not code

void touch() {
  // std::lock_guard would be wrong here; zi::LockGuard is the shim.
}

}  // namespace fixture
