// Fixture: a per-line allow silences raw-primitive on that line only.
#include <mutex>

namespace fixture {

// zilint:allow(raw-primitive): fixture exercises the suppression path
std::mutex g_suppressed;

}  // namespace fixture
