// Fixture: raw-primitive must fire on a std primitive outside the shim layer.
#include <mutex>

namespace fixture {

std::mutex g_raw;  // finding: raw std::mutex

void touch() {
  std::lock_guard<std::mutex> lock(g_raw);  // finding: raw std::lock_guard
}

}  // namespace fixture
