// Fixture: a zi::Mutex no annotation ever names — exactly what
// -Wthread-safety silently ignores and mutex-annotation must catch.
#pragma once
#include "common/thread_annotations.hpp"

namespace fixture {

class Unannotated {
 public:
  void poke();

 private:
  zi::Mutex mutex_{"fixture::Unannotated"};  // finding: never annotated
  int counter_ = 0;
};

}  // namespace fixture
