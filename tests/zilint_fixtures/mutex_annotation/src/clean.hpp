// Fixture: a mutex named by ZI_GUARDED_BY is covered.
#pragma once
#include "common/thread_annotations.hpp"

namespace fixture {

class Annotated {
 public:
  void poke() ZI_EXCLUDES(mutex_);

 private:
  zi::Mutex mutex_{"fixture::Annotated"};
  int counter_ ZI_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture
