// Fixture: a standalone allow comment covers the declaration on the next
// line (the documented standalone-comment propagation).
#pragma once
#include "common/thread_annotations.hpp"

namespace fixture {

class Suppressed {
 private:
  // zilint:allow(mutex-annotation): guards an external resource, no member
  zi::Mutex mutex_{"fixture::Suppressed"};
};

}  // namespace fixture
