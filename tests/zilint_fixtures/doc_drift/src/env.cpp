// Fixture: one documented read (clean), one undocumented read (finding),
// one undocumented read under an allow (suppressed).
#include <cstdlib>

namespace fixture {

void read_env() {
  (void)std::getenv("ZI_GOOD");
  (void)std::getenv("ZI_UNDOCUMENTED");  // finding: no README row
  // zilint:allow(doc-drift): fixture exercises the suppression path
  (void)std::getenv("ZI_SUPPRESSED");
}

}  // namespace fixture
