// Fixture StepReport emitter: one documented field, one undocumented.
#include <string>

namespace fixture {

void append_kv(std::string& out, const char* key, double v);

void to_json_line(std::string& out) {
  append_kv(out, "step", 1.0);
  append_kv(out, "bogus_field", 2.0);  // finding: no DESIGN.md row
}

}  // namespace fixture
