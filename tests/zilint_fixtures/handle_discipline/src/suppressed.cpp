// Fixture: a justified discard under an allow.
#include "move/data_mover.hpp"

namespace fixture {

void fire_and_forget(zi::DataMover& mover, const zi::Extent& extent,
                     std::span<const std::byte> src) {
  // zilint:allow(handle-discipline): fixture exercises the suppression path
  mover.spill_nvme(extent, src);
}

}  // namespace fixture
