// Fixture: transfer-issuing calls whose result is dropped on the floor.
#include "move/data_mover.hpp"

namespace fixture {

void leak(zi::DataMover& mover, const zi::Extent& extent,
          std::span<std::byte> dst) {
  mover.fetch_nvme(extent, dst);  // finding: TransferHandle discarded
  mover.stage(dst.size());        // finding: StagingLease discarded
}

}  // namespace fixture
