// Fixture: every shape that legitimately binds or consumes the result —
// none of these may fire.
#include "move/data_mover.hpp"

namespace fixture {

zi::TransferHandle forward(zi::DataMover& mover, const zi::Extent& extent,
                           std::span<std::byte> dst) {
  auto handle = mover.fetch_nvme(extent, dst);  // bound
  handle.wait();
  mover.spill_nvme(extent, dst).wait();         // chained: consumed in place
  zi::StagingLease lease = mover.stage(dst.size());
  return mover.fetch_nvme(extent, lease.bytes());  // returned
}

// A declaration that happens to reuse an issuing name is not a call chain.
zi::TransferHandle fetch_nvme(int token);

}  // namespace fixture
