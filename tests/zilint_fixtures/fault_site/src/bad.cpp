// Fixture: a spec naming an unregistered site must fire fault-site-sync.
namespace fixture {

const char* kTypoSpec = "gamma:error,p=0.1";  // finding: unknown site

}  // namespace fixture
