// Fixture: an unknown site under an allow (negative-testing idiom).
namespace fixture {

// zilint:allow(fault-site-sync): deliberately-bogus site for an error test
const char* kBogusSpec = "delta:error,p=0.1";

}  // namespace fixture
