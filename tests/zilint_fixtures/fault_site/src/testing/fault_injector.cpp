// Fixture registry source: the site-name table the rule parses.
#include "testing/fault_injector.hpp"

#include <array>

namespace fixture {

constexpr std::array<const char*, kNumFaultSites> kSiteNames = {
    "alpha",
    "beta",
};

}  // namespace fixture
