// Fixture registry header: two sites, count in sync.
#pragma once

namespace fixture {

enum class FaultSite : int {
  kAlpha = 0,
  kBeta,
};
inline constexpr int kNumFaultSites = 2;

}  // namespace fixture
