// Fixture: clean call sites — both enum entries wired, specs name
// registered sites only.
#include "testing/fault_injector.hpp"

namespace fixture {

void wire() {
  (void)FaultSite::kAlpha;
  (void)FaultSite::kBeta;
}

const char* kGoodSpec = "seed=7;alpha:error,p=0.5;beta:delay,p=1";

}  // namespace fixture
