// Regression: interleaving eval_loss() between train_step()s is invisible
// to training — the traced prefetch order, the prefetch hit counts, and
// the dynamic loss-scaler state all match a run with no eval passes, and
// the loss trajectory is bit-identical. This is the guarantee that lets a
// serving/eval consumer share an engine with training without perturbing
// the overlap-centric prefetcher (Sec. 6.2).
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "core/engine.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig tiny_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 8;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  return cfg;
}

void make_batch(int rank, int step, const GptConfig& cfg,
                std::vector<std::int32_t>& tokens,
                std::vector<std::int32_t>& targets) {
  const std::int64_t n = 2 * cfg.seq;
  tokens.resize(static_cast<std::size_t>(n));
  targets.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t v = (rank * 31 + step * 7 + i * 3) % (cfg.vocab - 1);
    tokens[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(v);
    targets[static_cast<std::size_t>(i)] =
        static_cast<std::int32_t>((v * 3 + 3) % (cfg.vocab - 1));
  }
}

struct RunResult {
  std::vector<float> losses;
  std::vector<float> eval_losses;
  std::vector<int> trace;
  float final_scale = 0.0f;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t trace_invalidations = 0;
};

RunResult run_training(bool interleave_eval, const fs::path& dir) {
  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.param_placement = Placement::kNvme;
  cfg.optimizer_placement = Placement::kCpu;
  cfg.grad_placement = Placement::kCpu;
  cfg.nvme_dir = dir.string();
  cfg.prefetch_depth = 2;
  cfg.persistence_threshold_elems = 32;

  const GptConfig mcfg = tiny_model();
  constexpr int kSteps = 5;
  RunResult result;
  AioEngine aio;
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(mcfg);
    ZeroEngine engine(model, comm, aio, cfg);
    std::vector<std::int32_t> tokens, targets, ev_tokens, ev_targets;
    make_batch(7, 99, mcfg, ev_tokens, ev_targets);  // fixed eval batch
    for (int s = 0; s < kSteps; ++s) {
      if (interleave_eval && s > 0) {
        // Eval between every pair of training steps — including right
        // after the trace-recording first step, the worst case for the
        // prefetcher.
        const float ev = engine.eval_loss(ev_tokens, ev_targets);
        if (comm.rank() == 0) result.eval_losses.push_back(ev);
      }
      make_batch(comm.rank(), s, mcfg, tokens, targets);
      const auto st = engine.train_step(tokens, targets);
      if (comm.rank() == 0) result.losses.push_back(st.global_loss);
    }
    if (comm.rank() == 0) {
      const auto& stats = engine.coordinator()->stats();
      result.trace = engine.coordinator()->trace();
      result.final_scale = engine.loss_scaler().scale();
      result.prefetch_hits = stats.prefetch_hits;
      result.prefetches_issued = stats.prefetches_issued;
      result.trace_invalidations = stats.trace_invalidations;
    }
  });
  return result;
}

class EvalInterleaveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_eval_interleave_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(EvalInterleaveTest, EvalBetweenStepsIsInvisibleToTraining) {
  const RunResult plain = run_training(/*interleave_eval=*/false, dir_);
  const RunResult mixed = run_training(/*interleave_eval=*/true, dir_);

  // Bit-identical loss trajectory.
  ASSERT_EQ(plain.losses.size(), mixed.losses.size());
  for (std::size_t i = 0; i < plain.losses.size(); ++i) {
    EXPECT_EQ(plain.losses[i], mixed.losses[i]) << "step " << i;
  }
  // Traced prefetch order untouched (and non-trivial).
  EXPECT_FALSE(plain.trace.empty());
  EXPECT_EQ(plain.trace, mixed.trace);
  EXPECT_EQ(plain.trace_invalidations, mixed.trace_invalidations);
  // Hit rate untouched: eval neither consumes nor drops training
  // prefetches, so issued and hit counts match exactly.
  EXPECT_EQ(plain.prefetches_issued, mixed.prefetches_issued);
  EXPECT_EQ(plain.prefetch_hits, mixed.prefetch_hits);
  EXPECT_GT(mixed.prefetch_hits, 0u);
  // Loss-scaler state untouched.
  EXPECT_EQ(plain.final_scale, mixed.final_scale);

  // And the eval passes themselves were real forwards: deterministic,
  // fixed batch, loss changing as training advances.
  ASSERT_EQ(mixed.eval_losses.size(), 4u);
  EXPECT_NE(mixed.eval_losses.front(), mixed.eval_losses.back());
}

}  // namespace
}  // namespace zi
