// Kernel tests. Backward passes are validated against central-difference
// numerical gradients — the strongest property check available for
// hand-written autograd.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace zi {
namespace {

std::vector<float> randn(std::size_t n, std::uint64_t stream) {
  Rng rng(1234, stream);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.next_normal() * 0.5f;
  return v;
}

// Scalar loss = sum(w_i * out_i) with fixed pseudo-random weights, so the
// analytic upstream gradient is just w.
std::vector<float> loss_weights(std::size_t n) {
  Rng rng(777, 42);
  std::vector<float> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = rng.next_normal();
  return w;
}

double weighted(const std::vector<float>& out, const std::vector<float>& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) s += static_cast<double>(out[i]) * w[i];
  return s;
}

// Central-difference gradient of `loss` w.r.t. x[i].
double numeric_grad(std::vector<float>& x, std::size_t i,
                    const std::function<double()>& loss, float eps = 1e-3f) {
  const float save = x[i];
  x[i] = save + eps;
  const double up = loss();
  x[i] = save - eps;
  const double down = loss();
  x[i] = save;
  return (up - down) / (2.0 * eps);
}

void expect_grad_close(double analytic, double numeric, double tol,
                       const char* what, std::size_t i) {
  const double denom = std::max({std::fabs(analytic), std::fabs(numeric), 1.0});
  EXPECT_LE(std::fabs(analytic - numeric) / denom, tol)
      << what << " index " << i << ": analytic=" << analytic
      << " numeric=" << numeric;
}

// ---------------------------------------------------------------------------
// GEMM

TEST(Gemm, MatchesNaiveTripleLoop) {
  const i64 m = 7, k = 5, n = 9;
  auto a = randn(static_cast<std::size_t>(m * k), 1);
  auto b = randn(static_cast<std::size_t>(k * n), 2);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) {
      float ref = 0.0f;
      for (i64 p = 0; p < k; ++p) {
        ref += a[static_cast<std::size_t>(i * k + p)] * b[static_cast<std::size_t>(p * n + j)];
      }
      EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)], ref, 1e-4f);
    }
  }
}

TEST(Gemm, AlphaBetaSemantics) {
  const i64 m = 3, k = 4, n = 2;
  auto a = randn(static_cast<std::size_t>(m * k), 3);
  auto b = randn(static_cast<std::size_t>(k * n), 4);
  std::vector<float> base(static_cast<std::size_t>(m * n), 2.0f);
  std::vector<float> c = base;
  gemm(a.data(), b.data(), c.data(), m, k, n, 0.5f, 1.0f);
  std::vector<float> pure(static_cast<std::size_t>(m * n));
  gemm(a.data(), b.data(), pure.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], 2.0f + 0.5f * pure[i], 1e-4f);
  }
}

TEST(Gemm, TransposedVariantsAgree) {
  const i64 m = 4, k = 6, n = 5;
  auto a = randn(static_cast<std::size_t>(m * k), 5);   // A[m,k]
  auto b = randn(static_cast<std::size_t>(k * n), 6);   // B[k,n]
  std::vector<float> ref(static_cast<std::size_t>(m * n));
  gemm(a.data(), b.data(), ref.data(), m, k, n);

  // gemm_nt with B pre-transposed must equal gemm.
  std::vector<float> bt(static_cast<std::size_t>(n * k));
  for (i64 i = 0; i < k; ++i) {
    for (i64 j = 0; j < n; ++j) {
      bt[static_cast<std::size_t>(j * k + i)] = b[static_cast<std::size_t>(i * n + j)];
    }
  }
  std::vector<float> c1(static_cast<std::size_t>(m * n));
  gemm_nt(a.data(), bt.data(), c1.data(), m, k, n);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(c1[i], ref[i], 1e-4f);

  // gemm_tn with A pre-transposed must equal gemm.
  std::vector<float> at(static_cast<std::size_t>(k * m));
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < k; ++j) {
      at[static_cast<std::size_t>(j * m + i)] = a[static_cast<std::size_t>(i * k + j)];
    }
  }
  std::vector<float> c2(static_cast<std::size_t>(m * n));
  gemm_tn(at.data(), b.data(), c2.data(), m, k, n);
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_NEAR(c2[i], ref[i], 1e-4f);
}

// ---------------------------------------------------------------------------
// Linear: full gradient check on x, W, bias.

TEST(Linear, GradCheck) {
  const i64 batch = 3, in = 4, out = 5;
  auto x = randn(static_cast<std::size_t>(batch * in), 10);
  auto w = randn(static_cast<std::size_t>(in * out), 11);
  auto bias = randn(static_cast<std::size_t>(out), 12);
  const auto lw = loss_weights(static_cast<std::size_t>(batch * out));

  auto loss = [&] {
    std::vector<float> y(static_cast<std::size_t>(batch * out));
    linear_forward(x.data(), w.data(), bias.data(), y.data(), batch, in, out);
    return weighted(y, lw);
  };

  // Analytic gradients with upstream dy = lw.
  std::vector<float> dx(static_cast<std::size_t>(batch * in));
  std::vector<float> dw(static_cast<std::size_t>(in * out), 0.0f);
  std::vector<float> dbias(static_cast<std::size_t>(out), 0.0f);
  linear_backward(x.data(), w.data(), lw.data(), dx.data(), dw.data(),
                  dbias.data(), batch, in, out);

  for (std::size_t i = 0; i < x.size(); ++i) {
    expect_grad_close(dx[i], numeric_grad(x, i, loss), 2e-2, "dx", i);
  }
  for (std::size_t i = 0; i < w.size(); ++i) {
    expect_grad_close(dw[i], numeric_grad(w, i, loss), 2e-2, "dw", i);
  }
  for (std::size_t i = 0; i < bias.size(); ++i) {
    expect_grad_close(dbias[i], numeric_grad(bias, i, loss), 2e-2, "dbias", i);
  }
}

TEST(Linear, BackwardAccumulatesWeightGrads) {
  const i64 batch = 2, in = 3, out = 2;
  auto x = randn(static_cast<std::size_t>(batch * in), 13);
  auto w = randn(static_cast<std::size_t>(in * out), 14);
  auto dy = randn(static_cast<std::size_t>(batch * out), 15);
  std::vector<float> dw1(static_cast<std::size_t>(in * out), 0.0f);
  linear_backward(x.data(), w.data(), dy.data(), nullptr, dw1.data(), nullptr,
                  batch, in, out);
  std::vector<float> dw2 = dw1;
  linear_backward(x.data(), w.data(), dy.data(), nullptr, dw2.data(), nullptr,
                  batch, in, out);
  for (std::size_t i = 0; i < dw1.size(); ++i) {
    EXPECT_NEAR(dw2[i], 2.0f * dw1[i], 1e-5f);
  }
}

// ---------------------------------------------------------------------------
// GELU

TEST(Gelu, KnownValues) {
  const float xs[] = {0.0f, 1.0f, -1.0f, 3.0f};
  float ys[4];
  gelu_forward(xs, ys, 4);
  EXPECT_NEAR(ys[0], 0.0f, 1e-6f);
  EXPECT_NEAR(ys[1], 0.8412f, 1e-3f);   // gelu(1)
  EXPECT_NEAR(ys[2], -0.1588f, 1e-3f);  // gelu(-1)
  EXPECT_NEAR(ys[3], 2.9964f, 1e-3f);   // ~x for large x
}

TEST(Gelu, GradCheck) {
  auto x = randn(16, 20);
  const auto lw = loss_weights(16);
  auto loss = [&] {
    std::vector<float> y(16);
    gelu_forward(x.data(), y.data(), 16);
    return weighted(y, lw);
  };
  std::vector<float> dx(16);
  gelu_backward(x.data(), lw.data(), dx.data(), 16);
  for (std::size_t i = 0; i < 16; ++i) {
    expect_grad_close(dx[i], numeric_grad(x, i, loss), 2e-2, "gelu dx", i);
  }
}

TEST(Gelu, BackwardAccumulateFlag) {
  auto x = randn(8, 21);
  auto dy = randn(8, 22);
  std::vector<float> dx(8, 1.0f);
  gelu_backward(x.data(), dy.data(), dx.data(), 8, /*accumulate=*/true);
  std::vector<float> fresh(8);
  gelu_backward(x.data(), dy.data(), fresh.data(), 8, /*accumulate=*/false);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(dx[i], 1.0f + fresh[i], 1e-6f);
}

// ---------------------------------------------------------------------------
// LayerNorm

TEST(LayerNorm, NormalizesRows) {
  const i64 rows = 3, dim = 8;
  auto x = randn(static_cast<std::size_t>(rows * dim), 30);
  std::vector<float> gamma(static_cast<std::size_t>(dim), 1.0f);
  std::vector<float> beta(static_cast<std::size_t>(dim), 0.0f);
  std::vector<float> y(static_cast<std::size_t>(rows * dim));
  std::vector<float> mean(static_cast<std::size_t>(rows)), rstd(static_cast<std::size_t>(rows));
  layernorm_forward(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                    rstd.data(), rows, dim);
  for (i64 r = 0; r < rows; ++r) {
    double m = 0.0, v = 0.0;
    for (i64 j = 0; j < dim; ++j) m += y[static_cast<std::size_t>(r * dim + j)];
    m /= dim;
    for (i64 j = 0; j < dim; ++j) {
      const double d = y[static_cast<std::size_t>(r * dim + j)] - m;
      v += d * d;
    }
    v /= dim;
    EXPECT_NEAR(m, 0.0, 1e-5);
    EXPECT_NEAR(v, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradCheck) {
  const i64 rows = 2, dim = 6;
  auto x = randn(static_cast<std::size_t>(rows * dim), 31);
  auto gamma = randn(static_cast<std::size_t>(dim), 32);
  auto beta = randn(static_cast<std::size_t>(dim), 33);
  const auto lw = loss_weights(static_cast<std::size_t>(rows * dim));

  auto loss = [&] {
    std::vector<float> y(static_cast<std::size_t>(rows * dim));
    std::vector<float> mean(static_cast<std::size_t>(rows)), rstd(static_cast<std::size_t>(rows));
    layernorm_forward(x.data(), gamma.data(), beta.data(), y.data(),
                      mean.data(), rstd.data(), rows, dim);
    return weighted(y, lw);
  };

  std::vector<float> y(static_cast<std::size_t>(rows * dim));
  std::vector<float> mean(static_cast<std::size_t>(rows)), rstd(static_cast<std::size_t>(rows));
  layernorm_forward(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                    rstd.data(), rows, dim);
  std::vector<float> dx(static_cast<std::size_t>(rows * dim));
  std::vector<float> dgamma(static_cast<std::size_t>(dim), 0.0f);
  std::vector<float> dbeta(static_cast<std::size_t>(dim), 0.0f);
  layernorm_backward(x.data(), gamma.data(), mean.data(), rstd.data(),
                     lw.data(), dx.data(), dgamma.data(), dbeta.data(), rows,
                     dim);

  for (std::size_t i = 0; i < x.size(); ++i) {
    expect_grad_close(dx[i], numeric_grad(x, i, loss), 3e-2, "ln dx", i);
  }
  for (std::size_t i = 0; i < gamma.size(); ++i) {
    expect_grad_close(dgamma[i], numeric_grad(gamma, i, loss), 3e-2, "ln dgamma", i);
  }
  for (std::size_t i = 0; i < beta.size(); ++i) {
    expect_grad_close(dbeta[i], numeric_grad(beta, i, loss), 3e-2, "ln dbeta", i);
  }
}

// ---------------------------------------------------------------------------
// Softmax

TEST(Softmax, RowsSumToOne) {
  const i64 rows = 4, dim = 7;
  auto x = randn(static_cast<std::size_t>(rows * dim), 40);
  std::vector<float> y(static_cast<std::size_t>(rows * dim));
  softmax_forward(x.data(), y.data(), rows, dim);
  for (i64 r = 0; r < rows; ++r) {
    double s = 0.0;
    for (i64 j = 0; j < dim; ++j) {
      const float v = y[static_cast<std::size_t>(r * dim + j)];
      EXPECT_GT(v, 0.0f);
      s += v;
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const float x[] = {1000.0f, 1001.0f, 1002.0f};
  float y[3];
  softmax_forward(x, y, 1, 3);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_NEAR(y[0] + y[1] + y[2], 1.0f, 1e-5f);
  EXPECT_GT(y[2], y[1]);
}

TEST(Softmax, GradCheck) {
  const i64 rows = 2, dim = 5;
  auto x = randn(static_cast<std::size_t>(rows * dim), 41);
  const auto lw = loss_weights(static_cast<std::size_t>(rows * dim));
  auto loss = [&] {
    std::vector<float> y(static_cast<std::size_t>(rows * dim));
    softmax_forward(x.data(), y.data(), rows, dim);
    return weighted(y, lw);
  };
  std::vector<float> y(static_cast<std::size_t>(rows * dim));
  softmax_forward(x.data(), y.data(), rows, dim);
  std::vector<float> dx(static_cast<std::size_t>(rows * dim));
  softmax_backward(y.data(), lw.data(), dx.data(), rows, dim);
  for (std::size_t i = 0; i < x.size(); ++i) {
    expect_grad_close(dx[i], numeric_grad(x, i, loss), 3e-2, "softmax dx", i);
  }
}

TEST(Softmax, CausalMask) {
  std::vector<float> scores(16, 1.0f);
  apply_causal_mask(scores.data(), 4);
  for (i64 r = 0; r < 4; ++r) {
    for (i64 c = 0; c < 4; ++c) {
      if (c > r) {
        EXPECT_TRUE(std::isinf(scores[static_cast<std::size_t>(r * 4 + c)]));
      } else {
        EXPECT_EQ(scores[static_cast<std::size_t>(r * 4 + c)], 1.0f);
      }
    }
  }
  // Softmax over a masked row puts zero probability on future positions.
  std::vector<float> probs(16);
  softmax_forward(scores.data(), probs.data(), 4, 4);
  EXPECT_EQ(probs[1], 0.0f);
  EXPECT_NEAR(probs[0], 1.0f, 1e-6f);
}

// ---------------------------------------------------------------------------
// Embedding

TEST(Embedding, ForwardGathersRows) {
  const i64 vocab = 5, dim = 3;
  std::vector<float> table(static_cast<std::size_t>(vocab * dim));
  for (std::size_t i = 0; i < table.size(); ++i) table[i] = static_cast<float>(i);
  const std::int32_t ids[] = {4, 0, 2};
  std::vector<float> y(9);
  embedding_forward(table.data(), ids, y.data(), 3, dim);
  EXPECT_EQ(y[0], 12.0f);  // row 4 starts at 4*3
  EXPECT_EQ(y[3], 0.0f);   // row 0
  EXPECT_EQ(y[6], 6.0f);   // row 2
}

TEST(Embedding, BackwardScatterAddsWithRepeats) {
  const i64 vocab = 4, dim = 2;
  const std::int32_t ids[] = {1, 1, 3};
  std::vector<float> dy = {1.0f, 2.0f, 10.0f, 20.0f, 5.0f, 6.0f};
  std::vector<float> dtable(static_cast<std::size_t>(vocab * dim), 0.0f);
  embedding_backward(ids, dy.data(), dtable.data(), 3, dim);
  EXPECT_EQ(dtable[2], 11.0f);  // row 1 col 0: 1 + 10
  EXPECT_EQ(dtable[3], 22.0f);  // row 1 col 1: 2 + 20
  EXPECT_EQ(dtable[6], 5.0f);   // row 3
  EXPECT_EQ(dtable[0], 0.0f);   // untouched rows stay zero
}

// ---------------------------------------------------------------------------
// Cross-entropy

TEST(CrossEntropy, UniformLogitsGiveLogVocab) {
  const i64 batch = 2, vocab = 8;
  std::vector<float> logits(static_cast<std::size_t>(batch * vocab), 0.0f);
  const std::int32_t targets[] = {3, 5};
  std::vector<float> probs(static_cast<std::size_t>(batch * vocab));
  const float loss =
      cross_entropy_forward(logits.data(), targets, probs.data(), batch, vocab);
  EXPECT_NEAR(loss, std::log(8.0f), 1e-5f);
}

TEST(CrossEntropy, GradCheck) {
  const i64 batch = 3, vocab = 6;
  auto logits = randn(static_cast<std::size_t>(batch * vocab), 50);
  const std::int32_t targets[] = {0, 4, 2};
  auto loss = [&] {
    std::vector<float> probs(static_cast<std::size_t>(batch * vocab));
    return static_cast<double>(cross_entropy_forward(
        logits.data(), targets, probs.data(), batch, vocab));
  };
  std::vector<float> probs(static_cast<std::size_t>(batch * vocab));
  cross_entropy_forward(logits.data(), targets, probs.data(), batch, vocab);
  std::vector<float> dlogits(static_cast<std::size_t>(batch * vocab));
  cross_entropy_backward(probs.data(), targets, dlogits.data(), batch, vocab);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    expect_grad_close(dlogits[i], numeric_grad(logits, i, loss), 3e-2, "ce", i);
  }
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  const i64 batch = 1, vocab = 4;
  std::vector<float> logits = {20.0f, 0.0f, 0.0f, 0.0f};
  const std::int32_t targets[] = {0};
  std::vector<float> probs(4);
  const float loss =
      cross_entropy_forward(logits.data(), targets, probs.data(), batch, vocab);
  EXPECT_LT(loss, 1e-6f);
}

// ---------------------------------------------------------------------------
// Elementwise

TEST(Elementwise, Utilities) {
  std::vector<float> y = {1.0f, 2.0f};
  const std::vector<float> x = {10.0f, 20.0f};
  add_inplace(y, x);
  EXPECT_EQ(y[1], 22.0f);
  scale_inplace(y, 0.5f);
  EXPECT_EQ(y[0], 5.5f);
  axpy(2.0f, x, y);
  EXPECT_EQ(y[1], 51.0f);
  EXPECT_NEAR(squared_norm(x), 500.0, 1e-9);
  EXPECT_EQ(abs_max(y), 51.0f);
  EXPECT_FALSE(has_nan_or_inf(y));
  y[0] = std::nanf("");
  EXPECT_TRUE(has_nan_or_inf(y));
}

}  // namespace
}  // namespace zi
