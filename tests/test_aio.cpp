// AioEngine + NvmeStore tests: roundtrips, request splitting, async
// completion, error propagation, extent management.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <numeric>
#include <vector>

#include "aio/aio_engine.hpp"
#include "aio/nvme_store.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "mem/aligned.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

class AioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("zi_aio_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  Rng rng(seed, 0);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>(rng.at(i) & 0xFF);
  }
  return v;
}

TEST_F(AioTest, WriteReadRoundtrip) {
  AioEngine engine;
  AioFile* f = engine.open(dir_ / "a.bin");
  const auto data = random_bytes(10000, 1);
  engine.write(f, 0, data);
  std::vector<std::byte> back(10000);
  engine.read(f, 0, back);
  EXPECT_EQ(back, data);
}

TEST_F(AioTest, OffsetReadWrite) {
  AioEngine engine;
  AioFile* f = engine.open(dir_ / "b.bin");
  const auto d1 = random_bytes(512, 2);
  const auto d2 = random_bytes(512, 3);
  engine.write(f, 0, d1);
  engine.write(f, 100000, d2);
  std::vector<std::byte> back(512);
  engine.read(f, 100000, back);
  EXPECT_EQ(back, d2);
  engine.read(f, 0, back);
  EXPECT_EQ(back, d1);
}

TEST_F(AioTest, LargeRequestSplitsIntoSubRequests) {
  AioConfig cfg;
  cfg.block_bytes = 64 * 1024;
  cfg.num_workers = 4;
  AioEngine engine(cfg);
  AioFile* f = engine.open(dir_ / "c.bin");
  const auto data = random_bytes(1 << 20, 4);  // 1 MiB = 16 blocks
  engine.write(f, 0, data);
  const auto s = engine.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.sub_requests, 16u);
  std::vector<std::byte> back(1 << 20);
  engine.read(f, 0, back);
  EXPECT_EQ(back, data);
}

TEST_F(AioTest, AsyncCompletionAndDrain) {
  AioEngine engine;
  AioFile* f = engine.open(dir_ / "d.bin");
  const auto data = random_bytes(256 * 1024, 5);
  AioStatus w = engine.submit_write(f, 0, data);
  w.wait();
  EXPECT_TRUE(w.done());
  std::vector<std::byte> back(256 * 1024);
  AioStatus r = engine.submit_read(f, 0, back);
  engine.drain();  // explicit flush: everything outstanding completes
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, data);
}

TEST_F(AioTest, ManyConcurrentRequestsKeepIntegrity) {
  AioConfig cfg;
  cfg.num_workers = 8;
  cfg.block_bytes = 4096;
  AioEngine engine(cfg);
  AioFile* f = engine.open(dir_ / "e.bin");
  constexpr int kN = 32;
  constexpr std::size_t kLen = 16 * 1024;
  std::vector<std::vector<std::byte>> payloads;
  std::vector<AioStatus> statuses;
  for (int i = 0; i < kN; ++i) {
    payloads.push_back(random_bytes(kLen, 100 + static_cast<unsigned>(i)));
  }
  for (int i = 0; i < kN; ++i) {
    statuses.push_back(
        engine.submit_write(f, static_cast<std::uint64_t>(i) * kLen, payloads[static_cast<size_t>(i)]));
  }
  for (auto& s : statuses) s.wait();
  for (int i = 0; i < kN; ++i) {
    std::vector<std::byte> back(kLen);
    engine.read(f, static_cast<std::uint64_t>(i) * kLen, back);
    EXPECT_EQ(back, payloads[static_cast<size_t>(i)]) << "slot " << i;
  }
}

TEST_F(AioTest, ReadPastEofIsAnError) {
  AioEngine engine;
  AioFile* f = engine.open(dir_ / "f.bin");
  const auto data = random_bytes(100, 6);
  engine.write(f, 0, data);
  std::vector<std::byte> back(200);
  EXPECT_THROW(engine.read(f, 50, back), IoError);
}

TEST_F(AioTest, OpenFailureThrows) {
  AioEngine engine;
  EXPECT_THROW(engine.open(dir_ / "no_such_dir" / "x.bin"), IoError);
}

TEST_F(AioTest, EmptyRequestCompletesImmediately) {
  AioEngine engine;
  AioFile* f = engine.open(dir_ / "g.bin");
  AioStatus s = engine.submit_write(f, 0, std::span<const std::byte>{});
  EXPECT_TRUE(s.done());
  s.wait();
}

TEST_F(AioTest, ODirectRequestedFallsBackGracefully) {
  AioConfig cfg;
  cfg.try_odirect = true;
  AioEngine engine(cfg);
  AioFile* f = engine.open(dir_ / "h.bin");
  // Aligned buffer + aligned size: eligible for O_DIRECT where supported.
  AlignedBuffer buf = allocate_aligned(2 * kIoAlignment);
  std::memset(buf.get(), 0x77, 2 * kIoAlignment);
  engine.write(f, 0, {buf.get(), 2 * kIoAlignment});
  AlignedBuffer back = allocate_aligned(2 * kIoAlignment);
  engine.read(f, 0, {back.get(), 2 * kIoAlignment});
  EXPECT_EQ(std::memcmp(buf.get(), back.get(), 2 * kIoAlignment), 0);
  const auto s = engine.stats();
  EXPECT_EQ(s.direct_ops + s.buffered_ops, s.sub_requests);
}

TEST_F(AioTest, FileResizeAndSize) {
  AioEngine engine;
  AioFile* f = engine.open(dir_ / "i.bin");
  EXPECT_EQ(f->size(), 0u);
  f->resize(12345);
  EXPECT_EQ(f->size(), 12345u);
}

// ---------------------------------------------------------------------------
// NvmeStore

TEST_F(AioTest, NvmeStoreRoundtrip) {
  AioEngine engine;
  NvmeStore store(engine, dir_ / "swap.bin", 1 << 20);
  Extent e = store.allocate(5000);
  const auto data = random_bytes(5000, 7);
  store.write(e, data);
  std::vector<std::byte> back(5000);
  store.read(e, back);
  EXPECT_EQ(back, data);
}

TEST_F(AioTest, NvmeStoreAsyncOverlap) {
  AioEngine engine;
  NvmeStore store(engine, dir_ / "swap2.bin", 1 << 22);
  Extent e1 = store.allocate(100000);
  Extent e2 = store.allocate(100000);
  const auto d1 = random_bytes(100000, 8);
  const auto d2 = random_bytes(100000, 9);
  AioStatus w1 = store.write_async(e1, d1);
  AioStatus w2 = store.write_async(e2, d2);
  w1.wait();
  w2.wait();
  std::vector<std::byte> b1(100000), b2(100000);
  AioStatus r1 = store.read_async(e1, b1);
  AioStatus r2 = store.read_async(e2, b2);
  r1.wait();
  r2.wait();
  EXPECT_EQ(b1, d1);
  EXPECT_EQ(b2, d2);
}

TEST_F(AioTest, NvmeStoreExhaustionAndReuse) {
  AioEngine engine;
  NvmeStore store(engine, dir_ / "swap3.bin", 64 * 1024);
  std::vector<Extent> extents;
  EXPECT_THROW(
      {
        for (;;) extents.push_back(store.allocate(8 * 1024));
      },
      OutOfMemoryError);
  const auto used_before = store.used();
  extents.clear();  // RAII frees all extents
  EXPECT_EQ(store.used(), 0u);
  EXPECT_GT(used_before, 0u);
  Extent again = store.allocate(32 * 1024);
  EXPECT_TRUE(again.valid());
}

TEST_F(AioTest, NvmeStoreRejectsOversizeTransfer) {
  AioEngine engine;
  NvmeStore store(engine, dir_ / "swap4.bin", 1 << 20);
  Extent e = store.allocate(1000);
  std::vector<std::byte> big(1 << 19);
  EXPECT_THROW(store.write(e, big), Error);
}

TEST_F(AioTest, ExtentsDoNotOverlap) {
  AioEngine engine;
  NvmeStore store(engine, dir_ / "swap5.bin", 1 << 20);
  Extent a = store.allocate(10000);
  Extent b = store.allocate(10000);
  const bool disjoint = a.offset() + a.size() <= b.offset() ||
                        b.offset() + b.size() <= a.offset();
  EXPECT_TRUE(disjoint);
  // Writing one must not disturb the other.
  const auto da = random_bytes(10000, 10);
  const auto db = random_bytes(10000, 11);
  store.write(a, da);
  store.write(b, db);
  std::vector<std::byte> back(10000);
  store.read(a, back);
  EXPECT_EQ(back, da);
}

}  // namespace
}  // namespace zi
