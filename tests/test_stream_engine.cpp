// StreamEngine: forward-only weight streaming over the inference_only
// store. Pins the properties serving relies on — bit-identical logits
// across calls and world sizes, trace replay (prefetch hits) in serving
// mode, persistent parameters staying resident, and the training/serving
// store split (inference_only stores hold no optimizer or gradient state).
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/units.hpp"
#include "core/engine.hpp"
#include "core/stream_engine.hpp"
#include "model/gpt.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

GptConfig decode_model() {
  GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 16;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.tie_embeddings = true;
  cfg.checkpoint_activations = false;  // serving path, no recompute wrappers
  return cfg;
}

class StreamEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_stream_engine_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  EngineConfig serve_config() const {
    EngineConfig cfg;
    cfg.stage = ZeroStage::kStage3;
    cfg.param_placement = Placement::kNvme;
    cfg.optimizer_placement = Placement::kCpu;
    cfg.grad_placement = Placement::kCpu;
    cfg.nvme_dir = dir_.string();
    cfg.prefetch_depth = 2;
    cfg.persistence_threshold_elems = 32;  // layernorms/biases persist
    return cfg;
  }

  fs::path dir_;
};

std::vector<float> logits_of(StreamEngine& eng,
                             std::span<const std::int32_t> tokens) {
  Tensor t = eng.forward_logits(tokens);
  const auto s = t.span<float>();
  return std::vector<float>(s.begin(), s.end());
}

TEST_F(StreamEngineTest, LogitsBitIdenticalAcrossCallsAndWorldSizes) {
  const GptConfig mcfg = decode_model();
  const std::vector<std::int32_t> tokens = {1, 5, 9, 2, 7};
  std::vector<float> first, second, world2;
  std::uint64_t hits_after_second = 0;
  bool trace_stable = false;
  {
    AioEngine aio;
    run_ranks(1, [&](Communicator& comm) {
      Gpt model(mcfg);
      StreamEngine eng(model, comm, aio, serve_config());
      first = logits_of(eng, tokens);
      const std::vector<int> trace1 = eng.coordinator().trace();
      second = logits_of(eng, tokens);
      trace_stable = (trace1 == eng.coordinator().trace());
      hits_after_second = eng.coordinator().stats().prefetch_hits;
    });
  }
  ASSERT_EQ(first.size(),
            tokens.size() * static_cast<std::size_t>(mcfg.vocab));
  EXPECT_EQ(first, second);  // serving forward is deterministic
  EXPECT_TRUE(trace_stable);
  // Second step replays the recorded trace: NVMe shards arrive via
  // prefetch, not demand fetch.
  EXPECT_GT(hits_after_second, 0u);

  {
    AioEngine aio;
    std::vector<float> local;
    run_ranks(2, [&](Communicator& comm) {
      Gpt model(mcfg);
      StreamEngine eng(model, comm, aio, serve_config());
      std::vector<float> mine = logits_of(eng, tokens);
      if (comm.rank() == 0) local = std::move(mine);
    });
    world2 = std::move(local);
  }
  EXPECT_EQ(first, world2);  // partitioning never changes values
}

TEST_F(StreamEngineTest, ServingKeepsPersistentParamsResident) {
  AioEngine aio;
  const EngineConfig cfg = serve_config();
  run_ranks(2, [&](Communicator& comm) {
    Gpt model(decode_model());
    StreamEngine eng(model, comm, aio, cfg);
    const std::vector<std::int32_t> tokens = {3, 1, 4};
    (void)eng.forward_logits(tokens);
    std::size_t persistent_resident = 0;
    for (Parameter* p : model.all_parameters()) {
      if (p->numel() <= cfg.persistence_threshold_elems) {
        EXPECT_EQ(p->status(), Parameter::Status::kAvailable) << p->name();
        ++persistent_resident;
      } else {
        EXPECT_EQ(p->status(), Parameter::Status::kNotAvailable) << p->name();
      }
    }
    EXPECT_GT(persistent_resident, 0u);  // the layernorms
  });
}

TEST_F(StreamEngineTest, InferenceOnlyStoreShrinksFootprintAndTrainingRejects) {
  AioEngine aio;
  run_ranks(1, [&](Communicator& comm) {
    // Training engine must refuse a forward-only config.
    EngineConfig inf = serve_config();
    inf.inference_only = true;
    Gpt model(decode_model());
    EXPECT_THROW({ ZeroEngine rejected(model, comm, aio, inf); }, Error);

    // The inference-only store occupies a fraction of the training store's
    // optimizer+grad tier bytes (fp16 shards only ≈ 2/12 of the Sec. 3
    // 16-byte-per-param training state).
    EngineConfig train = serve_config();
    std::uint64_t train_used = 0, infer_used = 0;
    {
      Gpt m(decode_model());
      RankResources res(comm.rank(), aio, 8 * kMiB, 64 * kMiB, dir_,
                        64 * 1024, 2);
      ModelStateStore store(res, train, m.all_parameters(), 0, 1);
      train_used = res.accountant().used(Tier::kCpu) +
                   res.accountant().used(Tier::kNvme);
    }
    {
      Gpt m(decode_model());
      RankResources res(comm.rank(), aio, 8 * kMiB, 64 * kMiB, dir_,
                        64 * 1024, 2);
      ModelStateStore store(res, inf, m.all_parameters(), 0, 1);
      infer_used = res.accountant().used(Tier::kCpu) +
                   res.accountant().used(Tier::kNvme);
    }
    EXPECT_LT(infer_used * 3, train_used);  // > 3x smaller
    EXPECT_GT(infer_used, 0u);
  });
}

}  // namespace
}  // namespace zi
