// Core-library unit tests: partitioning math, tier buffers, the state
// store's partitioned init, activation offloading, and memory-centric
// tiling (numerics + the Fig. 6b capacity protocol).
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "core/act_offload.hpp"
#include "core/partition.hpp"
#include "core/state_store.hpp"
#include "core/tier_buffer.hpp"
#include "core/tiling.hpp"
#include "core/zero_config.hpp"
#include "model/local_store.hpp"

namespace zi {
namespace {

namespace fs = std::filesystem;

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("zi_core_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    aio_ = std::make_unique<AioEngine>();
    res_ = std::make_unique<RankResources>(
        /*rank=*/0, *aio_, /*gpu=*/32 * kMiB, /*nvme=*/64 * kMiB, dir_,
        /*pinned_bytes=*/64 * 1024, /*pinned_count=*/4);
  }
  void TearDown() override {
    res_.reset();
    aio_.reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  std::unique_ptr<AioEngine> aio_;
  std::unique_ptr<RankResources> res_;
};

// ---------------------------------------------------------------------------
// Partitioning

TEST(Partition, ShardSpecMath) {
  const ShardSpec s = make_shard_spec(10, 4);
  EXPECT_EQ(s.shard_elems, 3);
  EXPECT_EQ(s.padded_numel(), 12);
  EXPECT_EQ(s.begin(2), 6);
  EXPECT_EQ(s.valid_elems(0), 3);
  EXPECT_EQ(s.valid_elems(3), 1);  // elements 9..11 → only index 9 is real
  const ShardSpec even = make_shard_spec(8, 4);
  EXPECT_EQ(even.shard_elems, 2);
  EXPECT_EQ(even.padded_numel(), 8);
  const ShardSpec solo = make_shard_spec(7, 1);
  EXPECT_EQ(solo.shard_elems, 7);
}

class PartitionWorldTest : public ::testing::TestWithParam<int> {};

// Property: concatenating every rank's partitioned-init shard reproduces
// the full fp16 init exactly, for any world size — the invariant that makes
// model state independent of data-parallel degree.
TEST_P(PartitionWorldTest, ShardsConcatenateToFullInit) {
  const int world = GetParam();
  Parameter p("gpt.block0.attn.qkv.weight", {13, 7}, InitKind::kNormal, 0.02f);
  const ShardSpec spec = make_shard_spec(p.numel(), world);

  std::vector<half> assembled(static_cast<std::size_t>(spec.padded_numel()));
  for (int r = 0; r < world; ++r) {
    std::vector<half> shard(static_cast<std::size_t>(spec.shard_elems));
    init_shard_fp16(p, spec, r, shard);
    std::copy(shard.begin(), shard.end(),
              assembled.begin() + spec.begin(r));
  }
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    EXPECT_EQ(assembled[static_cast<std::size_t>(i)].bits(),
              half(p.init_value(i)).bits())
        << "element " << i << " world " << world;
  }
  // Padding is zero.
  for (std::int64_t i = p.numel(); i < spec.padded_numel(); ++i) {
    EXPECT_EQ(assembled[static_cast<std::size_t>(i)].bits(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, PartitionWorldTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(Partition, ExtractShard) {
  const ShardSpec spec = make_shard_spec(6, 3);
  std::vector<half> full(6);
  for (int i = 0; i < 6; ++i) full[static_cast<std::size_t>(i)] = half(static_cast<float>(i));
  std::vector<half> shard(2);
  extract_shard_fp16(full, spec, 1, shard);
  EXPECT_EQ(shard[0].to_float(), 2.0f);
  EXPECT_EQ(shard[1].to_float(), 3.0f);
}

// ---------------------------------------------------------------------------
// TierBuffer

TEST_F(CoreTest, TierBufferRoundtripAllTiers) {
  for (const Tier tier : {Tier::kGpu, Tier::kCpu, Tier::kNvme}) {
    TierBuffer buf(*res_, tier, 4096);
    std::vector<std::byte> src(4096);
    Rng rng(5, static_cast<std::uint64_t>(tier));
    for (auto& b : src) b = static_cast<std::byte>(rng.next_u64() & 0xFF);
    buf.store(src);
    std::vector<std::byte> dst(4096);
    buf.load(dst);
    EXPECT_EQ(dst, src) << tier_name(tier);
  }
}

TEST_F(CoreTest, TierBufferOffsetIo) {
  TierBuffer buf(*res_, Tier::kNvme, 8192);
  std::vector<std::byte> a(1024, std::byte{0xAA});
  std::vector<std::byte> b(1024, std::byte{0xBB});
  buf.store(a, 0);
  buf.store(b, 4096);
  std::vector<std::byte> out(1024);
  buf.load(out, 4096);
  EXPECT_EQ(out, b);
  buf.load(out, 0);
  EXPECT_EQ(out, a);
}

TEST_F(CoreTest, TierBufferAccounting) {
  const auto before = res_->accountant().used(Tier::kCpu);
  {
    TierBuffer buf(*res_, Tier::kCpu, 10000);
    EXPECT_EQ(res_->accountant().used(Tier::kCpu), before + 10000);
  }
  EXPECT_EQ(res_->accountant().used(Tier::kCpu), before);
}

TEST_F(CoreTest, TierBufferGpuUsesArena) {
  const auto used_before = res_->gpu().used();
  TierBuffer buf(*res_, Tier::kGpu, 4096);
  EXPECT_GT(res_->gpu().used(), used_before);
  ASSERT_NE(buf.data(), nullptr);
  buf.data()[0] = std::byte{1};
}

TEST_F(CoreTest, TierBufferNvmeHasNoDirectPointer) {
  TierBuffer buf(*res_, Tier::kNvme, 4096);
  EXPECT_EQ(buf.data(), nullptr);
}

TEST_F(CoreTest, TierBufferBoundsChecked) {
  TierBuffer buf(*res_, Tier::kCpu, 100);
  std::vector<std::byte> big(200);
  EXPECT_THROW(buf.store(big), Error);
  EXPECT_THROW(buf.load(big, 50), Error);
}

// ---------------------------------------------------------------------------
// ModelStateStore

TEST_F(CoreTest, StateStorePartitionedInitMatchesLocalInit) {
  // Build a small module tree; the partitioned store (world=2, rank 0/1)
  // must hold exactly the slices of what LocalParamStore materializes.
  Linear lin("lin", 8, 6);
  lin.finalize();
  LocalParamStore local(lin);

  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.param_placement = Placement::kNvme;
  cfg.optimizer_placement = Placement::kCpu;
  cfg.nvme_dir = dir_.string();

  for (int rank = 0; rank < 2; ++rank) {
    RankResources res(rank, *aio_, 8 * kMiB, 16 * kMiB, dir_, 64 * 1024, 2);
    ModelStateStore store(res, cfg, lin.all_parameters(), rank, /*world=*/2);
    for (Parameter* p : lin.all_parameters()) {
      const ShardSpec& spec = store.param_spec(p);
      std::vector<half> shard(static_cast<std::size_t>(spec.shard_elems));
      store.load_param_shard(p, shard);
      const Tensor& full16 = local.fp16(p);
      for (std::int64_t i = 0; i < spec.valid_elems(rank); ++i) {
        EXPECT_EQ(shard[static_cast<std::size_t>(i)].bits(),
                  full16.data<half>()[spec.begin(rank) + i].bits())
            << p->name() << " rank " << rank << " i " << i;
      }
    }
  }
}

TEST_F(CoreTest, StateStoreMasterInitializedFromRoundedFp16) {
  Linear lin("lin", 4, 4);
  lin.finalize();
  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.nvme_dir = dir_.string();
  ModelStateStore store(*res_, cfg, lin.all_parameters(), 0, 1);
  Parameter* w = lin.all_parameters()[0];
  const ShardSpec& spec = store.opt_spec(w);
  std::vector<float> master(static_cast<std::size_t>(spec.shard_elems));
  store.master(w).load(
      {reinterpret_cast<std::byte*>(master.data()), master.size() * 4});
  for (std::int64_t i = 0; i < w->numel(); ++i) {
    EXPECT_EQ(master[static_cast<std::size_t>(i)],
              half(w->init_value(i)).to_float());
  }
}

TEST_F(CoreTest, StateStoreGradShardRoundtripWithChunks) {
  Linear lin("lin", 16, 16);
  lin.finalize();
  EngineConfig cfg;
  cfg.stage = ZeroStage::kStage3;
  cfg.grad_placement = Placement::kNvme;
  cfg.nvme_dir = dir_.string();
  ModelStateStore store(*res_, cfg, lin.all_parameters(), 0, 1);
  Parameter* w = lin.all_parameters()[0];
  const auto n = static_cast<std::size_t>(store.opt_spec(w).shard_elems);
  std::vector<half> grad(n);
  for (std::size_t i = 0; i < n; ++i) grad[i] = half(static_cast<float>(i) * 0.25f);
  store.store_grad_shard(w, grad);
  std::vector<half> chunk(8);
  store.load_grad_shard_chunk(w, chunk, 16);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(chunk[static_cast<std::size_t>(i)].to_float(),
              static_cast<float>(16 + i) * 0.25f);
  }
}

// ---------------------------------------------------------------------------
// Activation offloaders

Tensor make_act(std::uint64_t seed) {
  Tensor t({4, 8}, DType::kF32);
  Rng rng(seed, 0);
  for (std::int64_t i = 0; i < t.numel(); ++i) t.set(i, rng.next_normal());
  return t;
}

TEST_F(CoreTest, CpuActivationOffloaderRoundtrip) {
  CpuActivationOffloader off(*res_);
  Tensor t = make_act(1);
  off.save(3, t);
  EXPECT_EQ(res_->accountant().used(Tier::kCpu), t.nbytes());
  Tensor back = off.load(3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back.get(i), t.get(i));
  off.discard(3);
  EXPECT_EQ(res_->accountant().used(Tier::kCpu), 0u);
}

TEST_F(CoreTest, NvmeActivationOffloaderRoundtrip) {
  NvmeActivationOffloader off(*res_);
  Tensor t = make_act(2);
  off.save(0, t);
  Tensor big({64, 64}, DType::kF32);  // exceeds the pinned buffer → heap path
  big.fill(3.25f);
  off.save(1, big);
  Tensor back0 = off.load(0);
  Tensor back1 = off.load(1);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back0.get(i), t.get(i));
  EXPECT_EQ(back1.get(100), 3.25f);
  off.discard(0);
  off.discard(1);
  EXPECT_EQ(res_->accountant().used(Tier::kNvme), 0u);
}

TEST_F(CoreTest, NvmeOffloaderOverwriteSlotReplacesContents) {
  NvmeActivationOffloader off(*res_);
  Tensor a = make_act(3);
  Tensor b = make_act(4);
  off.save(7, a);
  off.save(7, b);
  Tensor back = off.load(7);
  for (std::int64_t i = 0; i < b.numel(); ++i) EXPECT_EQ(back.get(i), b.get(i));
}

TEST_F(CoreTest, OffloaderLoadFromEmptySlotThrows) {
  CpuActivationOffloader off(*res_);
  EXPECT_THROW(off.load(42), Error);
}

// ---------------------------------------------------------------------------
// Memory-centric tiling

TEST(Tiling, TiledLinearMatchesLinear) {
  const std::int64_t in = 6, out = 10, tokens = 5;
  Linear ref("ref", in, out);
  TiledLinear tiled("tiled", in, out, /*tiles=*/3);
  ref.finalize();
  tiled.finalize();
  LocalParamStore ref_store(ref);
  LocalParamStore tiled_store(tiled);

  // Copy the reference weights into the tiles (column slices).
  Parameter* rw = ref.weight();
  Parameter* rb = ref.bias();
  const auto tiled_params = tiled.all_parameters();
  for (int t = 0; t < tiled.tiles(); ++t) {
    const auto [lo, hi] = tiled.tile_range(t);
    Parameter* tw = tiled_params[static_cast<std::size_t>(2 * t)];
    Parameter* tb = tiled_params[static_cast<std::size_t>(2 * t + 1)];
    ASSERT_EQ(tw->shape()[1], hi - lo);
    for (std::int64_t r = 0; r < in; ++r) {
      for (std::int64_t c = lo; c < hi; ++c) {
        tw->full_tensor().set(r * (hi - lo) + (c - lo),
                              rw->full_tensor().get(r * out + c));
      }
    }
    for (std::int64_t c = lo; c < hi; ++c) {
      tb->full_tensor().set(c - lo, rb->full_tensor().get(c));
    }
  }

  Tensor x({tokens, in}, DType::kF32);
  Rng rng(6, 0);
  for (std::int64_t i = 0; i < x.numel(); ++i) x.set(i, rng.next_normal());

  Tensor y_ref = ref.run_forward(x.clone());
  Tensor y_tiled = tiled.run_forward(x.clone());
  for (std::int64_t i = 0; i < y_ref.numel(); ++i) {
    EXPECT_NEAR(y_ref.get(i), y_tiled.get(i), 1e-5f) << i;
  }

  Tensor dy({tokens, out}, DType::kF32);
  for (std::int64_t i = 0; i < dy.numel(); ++i) dy.set(i, rng.next_normal());
  ref_store.zero_grads();
  tiled_store.zero_grads();
  Tensor dx_ref = ref.run_backward(dy.clone());
  Tensor dx_tiled = tiled.run_backward(dy.clone());
  for (std::int64_t i = 0; i < dx_ref.numel(); ++i) {
    EXPECT_NEAR(dx_ref.get(i), dx_tiled.get(i), 1e-4f) << "dx " << i;
  }
  // Weight grads per tile equal the column slices of the reference grads.
  for (int t = 0; t < tiled.tiles(); ++t) {
    const auto [lo, hi] = tiled.tile_range(t);
    Parameter* tw = tiled_params[static_cast<std::size_t>(2 * t)];
    for (std::int64_t r = 0; r < in; ++r) {
      for (std::int64_t c = lo; c < hi; ++c) {
        EXPECT_NEAR(tw->grad_tensor().get(r * (hi - lo) + (c - lo)),
                    rw->grad_tensor().get(r * out + c), 1e-4f);
      }
    }
  }
}

TEST(Tiling, UnevenTileSplitCoversAllColumns) {
  TiledLinear tiled("t", 4, 10, 3);  // 10 columns over 3 tiles: 3/3/4 split
  std::int64_t covered = 0;
  std::int64_t prev_end = 0;
  for (int t = 0; t < tiled.tiles(); ++t) {
    const auto [lo, hi] = tiled.tile_range(t);
    EXPECT_EQ(lo, prev_end);
    EXPECT_GT(hi, lo);
    covered += hi - lo;
    prev_end = hi;
  }
  EXPECT_EQ(covered, 10);
}

TEST(Tiling, FactoryProducesPlainLinearForFactorOne) {
  auto f1 = TiledLinear::factory(1);
  auto m = f1("x", 4, 4);
  EXPECT_NE(dynamic_cast<Linear*>(m.get()), nullptr);
  auto f4 = TiledLinear::factory(4);
  auto m4 = f4("y", 4, 8);
  EXPECT_NE(dynamic_cast<TiledLinear*>(m4.get()), nullptr);
}

// The Fig. 6b protocol: a virtual 32 GB "V100" pre-fragmented into 2 GiB
// chunks. Without tiling the 16K-hidden operator needs a >2 GiB contiguous
// block and fails; tiling restores feasibility up to 64K.
TEST(Tiling, Fig6bCapacityProtocol) {
  const std::vector<std::int64_t> hiddens = {8192, 16384, 32768, 65536};

  auto fresh_arena = [] {
    auto arena = std::make_unique<DeviceArena>("v100", 32 * kGiB,
                                               DeviceArena::Mode::kVirtual);
    arena->prefragment(2 * kGiB);
    return arena;
  };

  auto a1 = fresh_arena();
  EXPECT_EQ(max_hidden_with_tiling(*a1, /*tiles=*/1, hiddens), 8192);
  auto a2 = fresh_arena();
  EXPECT_GE(max_hidden_with_tiling(*a2, /*tiles=*/4, hiddens), 16384);
  auto a3 = fresh_arena();
  EXPECT_EQ(max_hidden_with_tiling(*a3, /*tiles=*/32, hiddens), 65536);
}

// Property: feasibility is monotone in the tiling factor.
class TilingMonotoneTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TilingMonotoneTest, MaxHiddenMonotoneInTiles) {
  const std::int64_t hd = GetParam();
  bool prev_fits = false;
  for (const int tiles : {1, 2, 4, 8, 16, 32, 64}) {
    DeviceArena arena("v100", 32 * kGiB, DeviceArena::Mode::kVirtual);
    arena.prefragment(2 * kGiB);
    const bool fits = mswm_fits(arena, hd, tiles);
    EXPECT_TRUE(fits || !prev_fits)
        << "feasibility regressed at tiles=" << tiles << " hd=" << hd;
    prev_fits = fits;
  }
}

INSTANTIATE_TEST_SUITE_P(Hiddens, TilingMonotoneTest,
                         ::testing::Values(8192, 16384, 32768, 65536));

}  // namespace
}  // namespace zi
