// PinnedBufferPool tests: leasing, reuse, blocking semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "mem/pinned_pool.hpp"

namespace zi {
namespace {

TEST(PinnedPool, AcquireGivesAlignedBuffer) {
  PinnedBufferPool pool(64 * 1024, 2);
  PinnedLease lease = pool.acquire();
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease.size(), 64u * 1024u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.data()) % kIoAlignment, 0u);
  std::memset(lease.data(), 0x5A, lease.size());
}

TEST(PinnedPool, LeaseReturnsOnDestruction) {
  PinnedBufferPool pool(1024, 1);
  { PinnedLease l = pool.acquire(); EXPECT_EQ(pool.available(), 0u); }
  EXPECT_EQ(pool.available(), 1u);
}

TEST(PinnedPool, TryAcquireExhaustion) {
  PinnedBufferPool pool(1024, 2);
  auto a = pool.try_acquire();
  auto b = pool.try_acquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(pool.try_acquire().has_value());
  a->release();
  EXPECT_TRUE(pool.try_acquire().has_value());
}

TEST(PinnedPool, AcquireBlocksUntilRelease) {
  PinnedBufferPool pool(1024, 1);
  PinnedLease held = pool.acquire();
  std::atomic<bool> got{false};
  std::thread t([&] {
    PinnedLease l = pool.acquire();  // blocks until `held` released
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  held.release();
  t.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(pool.stats().blocked_acquires, 1u);
}

TEST(PinnedPool, ReuseKeepsFootprintFixed) {
  // The paper's key property: a small fixed set of buffers services an
  // unbounded sequence of transfers.
  PinnedBufferPool pool(4096, 3);
  std::byte* seen[3] = {nullptr, nullptr, nullptr};
  for (int round = 0; round < 100; ++round) {
    PinnedLease l = pool.acquire();
    bool known = false;
    for (auto& s : seen) {
      if (s == l.data()) known = true;
    }
    if (!known) {
      for (auto& s : seen) {
        if (s == nullptr) {
          s = l.data();
          break;
        }
      }
    }
  }
  EXPECT_EQ(pool.stats().total_acquires, 100u);
  EXPECT_LE(pool.stats().peak_in_use, 3u);
  // Every lease came from the original 3 buffers.
  EXPECT_NE(seen[0], nullptr);
}

TEST(PinnedPool, MoveLease) {
  PinnedBufferPool pool(1024, 1);
  PinnedLease a = pool.acquire();
  PinnedLease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.release();
  EXPECT_EQ(pool.available(), 1u);
}

TEST(PinnedPool, StatsReportConfiguration) {
  PinnedBufferPool pool(2048, 5);
  const auto s = pool.stats();
  EXPECT_EQ(s.num_buffers, 5u);
  EXPECT_EQ(s.buffer_bytes, 2048u);
}

}  // namespace
}  // namespace zi
